/**
 * @file
 * Determinism contract for the online serving simulator: the same
 * (arrival seed, fault seed) pair must produce a bit-identical
 * ServeReport at DOTA_THREADS=1 and DOTA_THREADS=8 — the event loop is
 * serial and only the cost-cache warmup is parallel, so every scalar,
 * every per-request outcome and every device health timeline must match
 * exactly.
 */
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "serve/simulator.hpp"

namespace dota {
namespace {

/** Pin the global pool to @p n threads for one scope. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t n)
        : prev_(ThreadPool::globalConcurrency())
    {
        ThreadPool::setGlobalConcurrency(n);
    }
    ~ScopedThreads() { ThreadPool::setGlobalConcurrency(prev_); }

  private:
    size_t prev_;
};

/** Run @p fn at 1 thread and at 8 threads; return both results. */
template <typename Fn>
auto
atBothThreadCounts(Fn fn)
{
    ScopedThreads serial(1);
    auto a = fn();
    ScopedThreads parallel(8);
    auto b = fn();
    return std::make_pair(std::move(a), std::move(b));
}

/** Exact (bitwise, via ==) equality of two full serve reports. */
void
expectIdentical(const ServeReport &a, const ServeReport &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
    EXPECT_EQ(a.shed_expired, b.shed_expired);
    EXPECT_EQ(a.shed_starved, b.shed_starved);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.transient_errors, b.transient_errors);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.breaker_trips, b.breaker_trips);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    // Floating-point fields compared with ==: bit-identical, not close.
    EXPECT_EQ(a.p50_ms, b.p50_ms);
    EXPECT_EQ(a.p95_ms, b.p95_ms);
    EXPECT_EQ(a.p99_ms, b.p99_ms);
    EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
    EXPECT_EQ(a.max_latency_ms, b.max_latency_ms);
    EXPECT_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
    EXPECT_EQ(a.goodput_seq_s, b.goodput_seq_s);
    EXPECT_EQ(a.horizon_ms, b.horizon_ms);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_EQ(a.mean_retention, b.mean_retention);
    EXPECT_EQ(a.completed_by_level, b.completed_by_level);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        const RequestOutcome &x = a.outcomes[i];
        const RequestOutcome &y = b.outcomes[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(x.device, y.device);
        EXPECT_EQ(x.dispatch_ms, y.dispatch_ms);
        EXPECT_EQ(x.finish_ms, y.finish_ms);
        EXPECT_EQ(x.attempts, y.attempts);
        EXPECT_EQ(x.level, y.level);
        EXPECT_EQ(x.retention, y.retention);
        EXPECT_EQ(x.deadline_missed, y.deadline_missed);
    }
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (size_t d = 0; d < a.devices.size(); ++d) {
        EXPECT_EQ(a.devices[d].name, b.devices[d].name);
        EXPECT_EQ(a.devices[d].busy_ms, b.devices[d].busy_ms);
        EXPECT_EQ(a.devices[d].completed, b.devices[d].completed);
        EXPECT_EQ(a.devices[d].failed_attempts,
                  b.devices[d].failed_attempts);
        EXPECT_EQ(a.devices[d].breaker_trips,
                  b.devices[d].breaker_trips);
        EXPECT_EQ(a.devices[d].down_intervals,
                  b.devices[d].down_intervals);
    }
}

ServeReport
chaosRun(uint64_t arrival_seed, uint64_t fault_seed)
{
    TraceConfig tc;
    tc.rate_per_s = 500.0;
    tc.requests = 160;
    tc.seed = arrival_seed;
    tc.deadline_ms = 130.0;
    tc.len_min = 256;
    tc.len_max = 2048;
    ServeConfig sc;
    sc.accelerators = 6;
    sc.mode = DotaMode::Full;
    sc.policy.timeout_ms = 70.0;
    sc.policy.max_retries = 3;
    sc.policy.queue_limit = 48;
    sc.policy.degrade_depth_1 = 2.0;
    sc.policy.degrade_depth_2 = 4.0;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const FaultPlan plan = parseFaultPlan(
        "kill:0@50,kill:1@80,revive:0@250,slow:2@40-200x6,"
        "transient:0.05,mtbf:4000x200");
    return sim.run(generateTrace(tc), plan, fault_seed);
}

TEST(ServeDeterminism, ChaosReportBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] =
        atBothThreadCounts([] { return chaosRun(42, 7); });
    expectIdentical(serial, parallel);
    // The chaos scenario actually exercises the robustness machinery —
    // otherwise the bit-identity claim is vacuous.
    EXPECT_GT(serial.retries + serial.failovers, 0u);
    EXPECT_GT(serial.completed, 0u);
    EXPECT_EQ(serial.completed + serial.shed() + serial.failed,
              serial.requests);
}

TEST(ServeDeterminism, SameSeedsSameReportAcrossRuns)
{
    ScopedThreads parallel(8);
    const ServeReport a = chaosRun(9, 17);
    const ServeReport b = chaosRun(9, 17);
    expectIdentical(a, b);
}

TEST(ServeDeterminism, SeedsActuallyMatter)
{
    ScopedThreads parallel(8);
    const ServeReport base = chaosRun(9, 17);
    const ServeReport other_arrivals = chaosRun(10, 17);
    const ServeReport other_faults = chaosRun(9, 18);
    EXPECT_NE(base.mean_latency_ms, other_arrivals.mean_latency_ms);
    // A different fault seed reshuffles the MTBF schedule and transient
    // draws; some observable statistic must move.
    const bool differs =
        base.mean_latency_ms != other_faults.mean_latency_ms ||
        base.retries != other_faults.retries ||
        base.completed != other_faults.completed ||
        base.total_energy_j != other_faults.total_energy_j;
    EXPECT_TRUE(differs);
}

TEST(ServeDeterminism, HealthyRunBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] = atBothThreadCounts([] {
        TraceConfig tc;
        tc.rate_per_s = 300.0;
        tc.requests = 100;
        tc.seed = 3;
        tc.len_max = 1024; // few distinct lengths: fast serial warmup
        ServeConfig sc;
        sc.accelerators = 4;
        ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
        return sim.run(generateTrace(tc));
    });
    expectIdentical(serial, parallel);
    EXPECT_EQ(serial.completed, serial.requests);
}

} // namespace
} // namespace dota
