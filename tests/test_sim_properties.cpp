/**
 * @file
 * Property sweeps over the simulator configuration space: invariants
 * that must hold for every (benchmark, mode, dataflow, parallelism)
 * combination, guarding the cost model against regressions that a
 * single-point test would miss.
 */
#include <gtest/gtest.h>

#include "core/dota.hpp"

namespace dota {
namespace {

using SimPoint = std::tuple<BenchmarkId, Dataflow, size_t>;

class SimProperty : public ::testing::TestWithParam<SimPoint>
{
  protected:
    static const DotaAccelerator &
    accel()
    {
        static const DotaAccelerator acc(HwConfig::dotaScaledForGpu());
        return acc;
    }
};

TEST_P(SimProperty, CostsAreFiniteAndPositive)
{
    const auto [id, dataflow, t] = GetParam();
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    opt.dataflow = dataflow;
    opt.token_parallelism = t;
    const RunReport r = accel().simulate(benchmark(id), opt);
    EXPECT_GT(r.totalCycles(), 0u);
    EXPECT_GT(r.per_layer.linear.cycles, 0u);
    EXPECT_GT(r.per_layer.attention.cycles, 0u);
    EXPECT_GT(r.totalEnergyJ(), 0.0);
    EXPECT_TRUE(std::isfinite(r.totalEnergyJ()));
    EXPECT_TRUE(std::isfinite(r.timeMs()));
}

TEST_P(SimProperty, SparseModesNeverSlowerThanDense)
{
    const auto [id, dataflow, t] = GetParam();
    SimOptions opt;
    opt.dataflow = dataflow;
    opt.token_parallelism = t;
    opt.mode = DotaMode::Full;
    const uint64_t full = accel().simulate(benchmark(id), opt)
                              .per_layer.attention.cycles;
    opt.mode = DotaMode::Conservative;
    const RunReport cons = accel().simulate(benchmark(id), opt);
    EXPECT_LT(cons.per_layer.attention.cycles +
                  cons.per_layer.detection.cycles,
              full);
}

TEST_P(SimProperty, MacsMatchSparsityAccounting)
{
    const auto [id, dataflow, t] = GetParam();
    const Benchmark &b = benchmark(id);
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    opt.dataflow = dataflow;
    opt.token_parallelism = t;
    const RunReport r = accel().simulate(b, opt);
    // Attention MACs = 2 (QK^T + AV) * heads * nnz * head_dim, and nnz
    // is bounded by retention (the row-balance constraint rounds per
    // row, and causal masks clip early rows).
    const double n = static_cast<double>(b.paper_shape.seq_len);
    const double bound = 2.0 * b.paper_shape.heads *
                         (b.retention_conservative * n + 1.0) * n *
                         b.paper_shape.headDim();
    EXPECT_LE(static_cast<double>(r.per_layer.attention.macs),
              bound * 1.05);
    EXPECT_GT(r.per_layer.attention.macs, 0u);
}

TEST_P(SimProperty, EnergyDominatedByLinear)
{
    // Section 5.4: with detection enabled the FC/linear stage dominates
    // energy on every benchmark.
    const auto [id, dataflow, t] = GetParam();
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    opt.dataflow = dataflow;
    opt.token_parallelism = t;
    const RunReport r = accel().simulate(benchmark(id), opt);
    EXPECT_GT(r.per_layer.linear.energy_pj,
              0.5 * r.per_layer.totalEnergyPj());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimProperty,
    ::testing::Combine(
        ::testing::Values(BenchmarkId::QA, BenchmarkId::Image,
                          BenchmarkId::Text, BenchmarkId::LM),
        ::testing::Values(Dataflow::TokenParallelOoO,
                          Dataflow::TokenParallelInOrder),
        ::testing::Values(size_t{2}, size_t{4})),
    [](const ::testing::TestParamInfo<SimPoint> &info) {
        // NOTE: no structured bindings here — the comma inside the
        // bracket list would split the macro arguments.
        const std::string df =
            std::get<1>(info.param) == Dataflow::TokenParallelOoO
                ? "OoO"
                : "InOrder";
        return benchmark(std::get<0>(info.param)).name + "_" + df +
               "_T" + std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace dota
