/**
 * @file
 * KV integrity tests (DESIGN.md §14), at both grains:
 *
 *  - Paged-arena seals (serve/kv_cache.hpp): every content-changing
 *    write re-stamps and re-seals the page, every corruption mode
 *    (bit-flip, zero-page, torn-write) is caught by verifyPage /
 *    verifySeq, and quarantineSeq takes poisoned frames out of
 *    capacity without leaking their healthy siblings.
 *
 *  - Real DecodeState seals (nn/decode.hpp): sealKv/verifyKv round-trip
 *    over the K/V payload, every KvFault mode is detected, and the
 *    recovery recipe — discard the poisoned state, re-decode the
 *    prefix — reproduces the fault-free continuation bit-for-bit.
 */
#include <gtest/gtest.h>

#include <vector>

#include "nn/decode.hpp"
#include "nn/loss.hpp"
#include "serve/kv_cache.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

KvCacheConfig
tinyArena(size_t pages = 16, size_t page_tokens = 8)
{
    KvCacheConfig cfg;
    cfg.page_tokens = page_tokens;
    cfg.bytes_per_token = 64;
    cfg.budget_bytes = pages * page_tokens * cfg.bytes_per_token;
    return cfg;
}

// ------------------------------------------------- arena seal round-trip

TEST(KvIntegrity, SealsSurviveAppendShrinkAndReuse)
{
    PagedKvAllocator a(tinyArena());
    ASSERT_TRUE(a.createSeq(1));
    ASSERT_TRUE(a.appendTokens(1, 3));  // partial page
    ASSERT_TRUE(a.appendTokens(1, 20)); // re-stamps the partial page
    ASSERT_TRUE(a.createSeq(2));
    ASSERT_TRUE(a.appendTokens(2, 9));
    EXPECT_EQ(a.shrinkTo(1, 10), 1u); // survivors re-stamped
    a.freeSeq(2);
    ASSERT_TRUE(a.createSeq(3));
    ASSERT_TRUE(a.appendTokens(3, 16)); // reuses freed frames

    // Every in-use page seals clean after any write interleaving.
    for (uint32_t page : a.usedPageList())
        EXPECT_TRUE(a.verifyPage(page)) << "page " << page;
    EXPECT_EQ(a.verifySeq(1), 0u);
    EXPECT_EQ(a.verifySeq(3), 0u);
    EXPECT_EQ(a.quarantinedPages(), 0u);
}

// ------------------------------------------- every corruption mode caught

TEST(KvIntegrity, EveryCorruptionModeIsDetected)
{
    for (const KvCorruption mode :
         {KvCorruption::BitFlip, KvCorruption::ZeroPage,
          KvCorruption::TornWrite}) {
        PagedKvAllocator a(tinyArena());
        ASSERT_TRUE(a.createSeq(1));
        ASSERT_TRUE(a.appendTokens(1, 24)); // 3 pages
        const std::vector<uint32_t> used = a.usedPageList();
        ASSERT_EQ(used.size(), 3u);

        const uint32_t victim = used[1];
        a.corruptPage(victim, mode);
        EXPECT_FALSE(a.verifyPage(victim)) << kvCorruptionName(mode);
        EXPECT_EQ(a.verifySeq(1), 1u) << kvCorruptionName(mode);
        // The other pages stay trustworthy.
        EXPECT_TRUE(a.verifyPage(used[0]));
        EXPECT_TRUE(a.verifyPage(used[2]));
    }
}

// ------------------------------------------------------------ quarantine

TEST(KvIntegrity, QuarantineRemovesPoisonedFramesFromCapacity)
{
    PagedKvAllocator a(tinyArena(8, 8)); // 8 pages, 64 token slots
    ASSERT_TRUE(a.createSeq(1));
    ASSERT_TRUE(a.appendTokens(1, 24)); // pages 0, 1, 2
    ASSERT_TRUE(a.createSeq(2));
    ASSERT_TRUE(a.appendTokens(2, 8)); // page 3

    a.corruptPage(1, KvCorruption::TornWrite);
    ASSERT_EQ(a.verifySeq(1), 1u);
    EXPECT_EQ(a.quarantineSeq(1), 1u);

    // Poisoned frame 1 leaves capacity; healthy frames 0 and 2 return
    // to the free list and the innocent sequence is untouched.
    EXPECT_FALSE(a.contains(1));
    EXPECT_EQ(a.quarantinedPages(), 1u);
    EXPECT_EQ(a.effectivePages(), 7u);
    EXPECT_EQ(a.usedPages(), 1u);
    EXPECT_EQ(a.freePages(), 6u);
    EXPECT_EQ(a.seqTokens(2), 8u);
    EXPECT_EQ(a.verifySeq(2), 0u);

    // Feasibility shrinks with the arena: a full-arena prompt no longer
    // fits, one page less does.
    EXPECT_FALSE(a.feasible(8 * 8));
    EXPECT_TRUE(a.feasible(7 * 8));

    // The quarantined frame is never handed out again: fill the arena
    // and check no page table contains it.
    ASSERT_TRUE(a.createSeq(3));
    ASSERT_TRUE(a.appendTokens(3, 6 * 8));
    EXPECT_FALSE(a.appendTokens(3, 8)); // arena exhausted at 7 pages
    for (uint32_t p : a.pageTable(3))
        EXPECT_NE(p, 1u);
}

// ------------------------------------------------ decode-state integrity

TransformerConfig
lmCfg()
{
    TransformerConfig cfg;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 32;
    cfg.vocab = 20;
    cfg.max_seq = 40;
    cfg.seed = 5;
    return cfg;
}

TEST(KvIntegrity, DecodeSealsRoundTripAndCatchEveryFault)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1, 12, 5};

    for (const KvFault mode :
         {KvFault::BitFlip, KvFault::ZeroRow, KvFault::TornWrite}) {
        DecodeState state;
        state.reset(model.config().layers);
        for (int tok : prefix)
            decodeStep(model, state, tok);

        const std::vector<uint32_t> seals = sealKv(state);
        ASSERT_EQ(seals.size(), model.config().layers);
        EXPECT_TRUE(verifyKv(state, seals));

        corruptKv(state, 1, mode);
        EXPECT_FALSE(verifyKv(state, seals))
            << "fault mode " << static_cast<int>(mode);
    }

    // Layer-count mismatch is a verification failure, not a crash.
    DecodeState other;
    other.reset(1);
    EXPECT_FALSE(verifyKv(other, std::vector<uint32_t>(2, 0)));
}

TEST(KvIntegrity, RecoveryByReprefillIsBitIdentical)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1, 12, 5};
    const size_t steps = 8;

    // Fault-free reference continuation (greedy: deterministic).
    const std::vector<int> healthy = generate(model, prefix, steps);
    ASSERT_EQ(healthy.size(), steps);

    // Chaos path: prefill, corrupt, detect — then recover exactly the
    // way the serving engine does, by discarding the poisoned state and
    // re-prefilling from the prompt.
    DecodeState state;
    state.reset(model.config().layers);
    for (int tok : prefix)
        decodeStep(model, state, tok);
    const std::vector<uint32_t> seals = sealKv(state);
    corruptKv(state, 0, KvFault::BitFlip);
    ASSERT_FALSE(verifyKv(state, seals));

    const std::vector<int> recovered = generate(model, prefix, steps);
    EXPECT_EQ(recovered, healthy)
        << "re-prefill must reproduce the continuation bit-for-bit";
}

// ------------------------------------- live migration at decode grain

TEST(KvIntegrity, MigratedDecodeContinuesBitIdentical)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1, 12, 5};

    // Uninterrupted reference: prefill + 6 greedy tokens on one
    // "device".
    DecodeState ref;
    ref.reset(model.config().layers);
    Matrix logits;
    for (int tok : prefix)
        logits = decodeStep(model, ref, tok);
    std::vector<int> ref_tokens;
    for (size_t s = 0; s < 6; ++s) {
        const int next = rowArgmax(logits)[0];
        ref_tokens.push_back(next);
        logits = decodeStep(model, ref, next);
    }

    // Migrated run: prefill + 2 tokens, export, import on a fresh
    // state (the "target device"), continue 4 more — the continuation
    // must match the uninterrupted run bit-for-bit, no re-prefill.
    DecodeState src;
    src.reset(model.config().layers);
    for (int tok : prefix)
        logits = decodeStep(model, src, tok);
    std::vector<int> mig_tokens;
    for (size_t s = 0; s < 2; ++s) {
        const int next = rowArgmax(logits)[0];
        mig_tokens.push_back(next);
        logits = decodeStep(model, src, next);
    }
    const KvTransfer transfer = exportKv(src);
    EXPECT_EQ(transfer.seals.size(), model.config().layers);
    DecodeState dst;
    ASSERT_TRUE(importKv(transfer, dst));
    EXPECT_EQ(dst.position, src.position);
    for (size_t s = 2; s < 6; ++s) {
        const int next = rowArgmax(logits)[0];
        mig_tokens.push_back(next);
        logits = decodeStep(model, dst, next);
    }
    EXPECT_EQ(mig_tokens, ref_tokens)
        << "migrated continuation must be bit-identical";
}

TEST(KvIntegrity, CorruptedTransferIsRefusedAndDstUntouched)
{
    CausalLM model(lmCfg());
    DecodeState src;
    src.reset(model.config().layers);
    for (int tok : {3, 7, 1, 12, 5})
        decodeStep(model, src, tok);

    KvTransfer transfer = exportKv(src);
    // Poison the payload in flight; the seals taken at departure stay.
    corruptKv(transfer.state, 1, KvFault::BitFlip);

    DecodeState dst;
    dst.reset(model.config().layers);
    decodeStep(model, dst, 9); // the receiver has its own state
    const std::vector<uint32_t> dst_seals = sealKv(dst);
    EXPECT_FALSE(importKv(transfer, dst));
    // Verify-on-arrival refused the adoption without touching dst.
    EXPECT_TRUE(verifyKv(dst, dst_seals));
    EXPECT_EQ(dst.position, 1u);

    // A clean transfer of the same session is accepted.
    EXPECT_TRUE(importKv(exportKv(src), dst));
    EXPECT_EQ(dst.position, src.position);
}

} // namespace
} // namespace dota
