/**
 * @file
 * Golden-value regression test for the trainer: the serial loss
 * trajectories of two synthetic tasks (5 steps, fixed seeds) are checked
 * in under tests/data/ and the trainer must reproduce them with exact
 * equality — at DOTA_THREADS=1 and at DOTA_THREADS=8, per the fixed-order
 * reduction contract.
 *
 * Regenerate (after an intentional numerics change) with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_parallel_tests \
 *       --gtest_filter='TrainingGolden.*'
 * and commit the rewritten tests/data/golden_training.txt.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

constexpr size_t kGoldenSteps = 5;

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) + "/golden_training.txt";
}

/** The two recorded tasks: a Prototype and a Match classification run. */
std::vector<double>
runTask(TaskKind kind)
{
    TaskConfig tc;
    tc.kind = kind;
    tc.seq_len = 32;
    tc.in_dim = 8;
    tc.classes = 4; // Match forces 2
    tc.signal_count = 4;
    tc.seed = kind == TaskKind::Prototype ? 21 : 22;
    SyntheticTask task(tc);
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 32;
    mc.classes = task.numClasses();
    mc.seed = 33;
    TransformerClassifier model(mc);
    TrainConfig cfg;
    cfg.steps = kGoldenSteps;
    cfg.batch = 4;
    cfg.data_seed = 55;
    ClassifierTrainer trainer(model, task, cfg);
    trainer.train();
    return trainer.lossHistory();
}

const char *
taskName(TaskKind kind)
{
    return kind == TaskKind::Prototype ? "prototype" : "match";
}

/** Losses serialized as hex floats so the round trip is bit-exact. */
std::string
formatLoss(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

std::map<std::string, std::vector<double>>
readGolden()
{
    std::ifstream in(goldenPath());
    std::map<std::string, std::vector<double>> out;
    std::string line, current;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string head;
        ls >> head;
        if (head == "task") {
            ls >> current;
            continue;
        }
        out[current].push_back(std::strtod(head.c_str(), nullptr));
    }
    return out;
}

void
writeGolden(
    const std::map<std::string, std::vector<double>> &trajectories)
{
    std::ofstream out(goldenPath());
    out << "# Serial (DOTA_THREADS=1) loss trajectories, "
        << kGoldenSteps << " steps, fixed seeds.\n"
        << "# Regenerate with DOTA_REGEN_GOLDEN=1 (see "
           "test_training_golden.cpp); values are C99 hex floats.\n";
    for (const auto &[name, losses] : trajectories) {
        out << "task " << name << "\n";
        for (double v : losses)
            out << formatLoss(v) << "\n";
    }
}

TEST(TrainingGolden, SerialTrajectoriesMatchGoldenFile)
{
    std::map<std::string, std::vector<double>> got;
    {
        // Record under the serial setting: this is the reference.
        ThreadPool::setGlobalConcurrency(1);
        got[taskName(TaskKind::Prototype)] = runTask(TaskKind::Prototype);
        got[taskName(TaskKind::Match)] = runTask(TaskKind::Match);
        ThreadPool::setGlobalConcurrency(configuredThreads());
    }
    if (envFlag("DOTA_REGEN_GOLDEN")) {
        writeGolden(got);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    for (const auto &[name, losses] : got) {
        auto it = golden.find(name);
        ASSERT_NE(it, golden.end()) << "task " << name;
        ASSERT_EQ(it->second.size(), losses.size()) << "task " << name;
        for (size_t s = 0; s < losses.size(); ++s)
            EXPECT_EQ(losses[s], it->second[s])
                << "task " << name << " step " << s;
    }
}

TEST(TrainingGolden, ParallelTrainerMatchesGoldenExactly)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    ThreadPool::setGlobalConcurrency(8);
    std::map<std::string, std::vector<double>> got;
    got[taskName(TaskKind::Prototype)] = runTask(TaskKind::Prototype);
    got[taskName(TaskKind::Match)] = runTask(TaskKind::Match);
    ThreadPool::setGlobalConcurrency(configuredThreads());
    for (const auto &[name, losses] : got) {
        auto it = golden.find(name);
        ASSERT_NE(it, golden.end()) << "task " << name;
        ASSERT_EQ(it->second.size(), losses.size()) << "task " << name;
        for (size_t s = 0; s < losses.size(); ++s)
            EXPECT_EQ(losses[s], it->second[s])
                << "task " << name << " step " << s;
    }
}

} // namespace
} // namespace dota
