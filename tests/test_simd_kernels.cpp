/**
 * @file
 * Property tests for the vectorized kernel layer (DESIGN.md §11):
 *
 *  - every GEMM variant against a naive double-accumulator reference
 *    (tolerance), over random shapes including ragged, single-row and
 *    empty extremes;
 *  - bit-exact equivalence of the portable and AVX2 kernel tables (the
 *    per-element reduction contract in tensor/gemm_kernels.hpp);
 *  - the Level-2 sparse attention kernels against the dense masked
 *    computation, bitwise on kept coordinates;
 *  - the MultiHeadAttention sparse inference path against its forced
 *    dense path, bitwise.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "nn/attention.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse_mask.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/topk.hpp"

namespace dota {
namespace {

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) ==
                0);
}

/** Naive matmul with double accumulation — the accuracy yardstick. */
Matrix
naiveMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < a.cols(); ++p)
                acc += static_cast<double>(a(i, p)) *
                       static_cast<double>(b(p, j));
            c(i, j) = static_cast<float>(acc);
        }
    return c;
}

Matrix
naiveMatmulBT(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.rows(); ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < a.cols(); ++p)
                acc += static_cast<double>(a(i, p)) *
                       static_cast<double>(b(j, p));
            c(i, j) = static_cast<float>(acc);
        }
    return c;
}

Matrix
naiveMatmulAT(const Matrix &a, const Matrix &b)
{
    Matrix c(a.cols(), b.cols());
    for (size_t i = 0; i < a.cols(); ++i)
        for (size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < a.rows(); ++p)
                acc += static_cast<double>(a(p, i)) *
                       static_cast<double>(b(p, j));
            c(i, j) = static_cast<float>(acc);
        }
    return c;
}

/** Relative-tolerance comparison scaled to the reduction depth. */
void
expectClose(const Matrix &got, const Matrix &ref, size_t depth,
            const char *what)
{
    ASSERT_EQ(got.rows(), ref.rows()) << what;
    ASSERT_EQ(got.cols(), ref.cols()) << what;
    const double tol =
        1e-5 * std::sqrt(static_cast<double>(depth) + 1.0);
    for (size_t i = 0; i < got.size(); ++i) {
        const double g = got.data()[i], r = ref.data()[i];
        EXPECT_NEAR(g, r, tol * (1.0 + std::abs(r)))
            << what << " flat index " << i;
    }
}

TEST(SimdKernels, GemmVariantsMatchNaiveReference)
{
    Rng shape_rng(41);
    for (int trial = 0; trial < 16; ++trial) {
        // Ragged shapes spanning the micro-kernel edge cases: below one
        // register tile, non-multiples of 8/16, and tall-skinny.
        const size_t m = 1 + shape_rng.uniformInt(70);
        const size_t k = 1 + shape_rng.uniformInt(70);
        const size_t n = 1 + shape_rng.uniformInt(70);
        Rng data_rng(1000 + static_cast<uint64_t>(trial));
        const Matrix a = Matrix::randomNormal(m, k, data_rng);
        const Matrix b = Matrix::randomNormal(k, n, data_rng);
        const Matrix bt = Matrix::randomNormal(n, k, data_rng);
        const Matrix at = Matrix::randomNormal(k, m, data_rng);
        expectClose(matmul(a, b), naiveMatmul(a, b), k, "matmul");
        expectClose(matmulBT(a, bt), naiveMatmulBT(a, bt), k, "matmulBT");
        expectClose(matmulAT(at, b), naiveMatmulAT(at, b), k, "matmulAT");
    }
}

TEST(SimdKernels, DegenerateShapes)
{
    Rng rng(42);
    // Single row/column and empty reduction (k = 0) or empty output
    // (m = 0 / n = 0) must all be well-defined.
    const Matrix a1 = Matrix::randomNormal(1, 17, rng);
    const Matrix b1 = Matrix::randomNormal(17, 1, rng);
    expectClose(matmul(a1, b1), naiveMatmul(a1, b1), 17, "1x17x1");

    const Matrix ak0(5, 0);
    const Matrix bk0(0, 7);
    const Matrix ck0 = matmul(ak0, bk0);
    ASSERT_EQ(ck0.rows(), 5u);
    ASSERT_EQ(ck0.cols(), 7u);
    for (size_t i = 0; i < ck0.size(); ++i)
        EXPECT_EQ(ck0.data()[i], 0.0f);

    const Matrix am0(0, 9);
    const Matrix bm0 = Matrix::randomNormal(9, 4, rng);
    EXPECT_EQ(matmul(am0, bm0).rows(), 0u);
    EXPECT_EQ(matmulBT(am0, Matrix::randomNormal(6, 9, rng)).rows(), 0u);
}

TEST(SimdKernels, PortableAndAvx2TablesBitIdentical)
{
    const GemmKernelTable &portable = detail::portableGemmKernels();
    const GemmKernelTable &avx2 = gemmKernels(SimdIsa::Avx2);
    if (&portable == &avx2)
        GTEST_SKIP() << "AVX2 table unavailable on this build/machine";

    Rng shape_rng(43);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t m = 1 + shape_rng.uniformInt(53);
        const size_t k = 1 + shape_rng.uniformInt(53);
        const size_t n = 1 + shape_rng.uniformInt(53);
        Rng data_rng(2000 + static_cast<uint64_t>(trial));
        const Matrix a = Matrix::randomNormal(m, k, data_rng);
        const Matrix b = Matrix::randomNormal(k, n, data_rng);
        const Matrix bt = Matrix::randomNormal(n, k, data_rng);

        Matrix c_p(m, n), c_v(m, n);
        portable.matmulRows(a, b, c_p, 0, m);
        avx2.matmulRows(a, b, c_v, 0, m);
        EXPECT_TRUE(bitIdentical(c_p, c_v))
            << "matmulRows " << m << "x" << k << "x" << n;

        Matrix d_p(m, n), d_v(m, n);
        portable.matmulBTRows(a, bt, d_p, 0, m);
        avx2.matmulBTRows(a, bt, d_v, 0, m);
        EXPECT_TRUE(bitIdentical(d_p, d_v))
            << "matmulBTRows " << m << "x" << k << "x" << n;

        const Matrix at = Matrix::randomNormal(k, m, data_rng);
        Matrix e_p(m, n), e_v(m, n);
        portable.matmulATRows(at, b, e_p, 0, m);
        avx2.matmulATRows(at, b, e_v, 0, m);
        EXPECT_TRUE(bitIdentical(e_p, e_v))
            << "matmulATRows " << m << "x" << k << "x" << n;

        EXPECT_EQ(portable.dot(a.row(0), a.row(0), k),
                  avx2.dot(a.row(0), a.row(0), k));
    }
}

TEST(SimdKernels, SparseScoresMatchDenseAtKeptCoordinates)
{
    Rng rng(44);
    for (size_t n : {5u, 33u, 64u}) {
        const size_t d = 24;
        const Matrix q = Matrix::randomNormal(n, d, rng);
        const Matrix k = Matrix::randomNormal(n, d, rng);
        const Matrix proxy = Matrix::randomNormal(n, n, rng);
        const SparseMask mask =
            SparseMask::fromDense(topkMask(proxy, std::max<size_t>(1, n / 4)));

        const CsrMatrix s = sparseRowsMatmulBT(q, k, mask);
        const Matrix dense = matmulBT(q, k);
        ASSERT_EQ(s.rows, n);
        for (size_t r = 0; r < n; ++r)
            for (uint32_t t = s.row_ptr[r]; t < s.row_ptr[r + 1]; ++t)
                EXPECT_EQ(s.val[t], dense(r, s.col[t]))
                    << "row " << r << " col " << s.col[t];
    }
}

TEST(SimdKernels, MaskedSoftmaxMatchesDenseIncludingEmptyRows)
{
    Rng rng(45);
    const size_t n = 29;
    const Matrix scores = Matrix::randomNormal(n, n, rng);
    Matrix dense_mask = topkMask(scores, 6);
    // Force one fully-omitted row: the dense path yields an all-zero
    // probability row there, the sparse path an empty CSR row.
    for (size_t c = 0; c < n; ++c)
        dense_mask(3, c) = 0.0f;
    const SparseMask mask = SparseMask::fromDense(dense_mask);
    const float sc = 0.125f;

    CsrMatrix s = csrFromMask(mask);
    // Fill CSR values with the dense scores at kept coordinates.
    for (size_t r = 0; r < n; ++r)
        for (uint32_t t = s.row_ptr[r]; t < s.row_ptr[r + 1]; ++t)
            s.val[t] = scores(r, s.col[t]);

    const CsrMatrix p = maskedSoftmax(s, sc);
    const Matrix ref = rowSoftmaxMasked(scale(scores, sc), dense_mask);
    const Matrix p_dense = p.toDense();
    EXPECT_TRUE(bitIdentical(p_dense, ref));
    // Empty row stayed empty.
    EXPECT_EQ(p.row_ptr[3], p.row_ptr[4]);
}

TEST(SimdKernels, MaskedSoftmaxOnFullMaskMatchesRowSoftmax)
{
    Rng rng(46);
    const size_t n = 21;
    const Matrix scores = Matrix::randomNormal(n, n, rng);
    Matrix full(n, n);
    for (size_t i = 0; i < full.size(); ++i)
        full.data()[i] = 1.0f;
    const SparseMask mask = SparseMask::fromDense(full);

    CsrMatrix s = csrFromMask(mask);
    for (size_t r = 0; r < n; ++r)
        for (uint32_t t = s.row_ptr[r]; t < s.row_ptr[r + 1]; ++t)
            s.val[t] = scores(r, s.col[t]);
    const float sc = 0.25f;
    const CsrMatrix p = maskedSoftmax(s, sc);
    const Matrix ref = rowSoftmax(scale(scores, sc));
    EXPECT_TRUE(bitIdentical(p.toDense(), ref));
}

TEST(SimdKernels, SparseAvMatchesDenseMatmul)
{
    Rng rng(47);
    const size_t n = 37, d = 19;
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    const Matrix dense_mask = topkMask(proxy, 9);
    const SparseMask mask = SparseMask::fromDense(dense_mask);
    const Matrix v = Matrix::randomNormal(n, d, rng);

    // Positive CSR values (softmax-like) with zeros elsewhere in the
    // dense twin: the sparse kernel skips exactly the zero terms, so the
    // results are bitwise equal.
    CsrMatrix a = csrFromMask(mask);
    Matrix a_dense(n, n);
    Rng vals(48);
    for (size_t r = 0; r < n; ++r)
        for (uint32_t t = a.row_ptr[r]; t < a.row_ptr[r + 1]; ++t) {
            const float x =
                0.05f + std::abs(static_cast<float>(vals.normal()));
            a.val[t] = x;
            a_dense(r, a.col[t]) = x;
        }

    EXPECT_TRUE(bitIdentical(sparseRowsMatmul(a, v), matmul(a_dense, v)));
}

TEST(SimdKernels, SparseMaskedAttentionMatchesDenseMaskedPath)
{
    Rng rng(49);
    for (size_t n : {16u, 57u}) {
        const size_t d = 16;
        const Matrix q = Matrix::randomNormal(n, d, rng);
        const Matrix k = Matrix::randomNormal(n, d, rng);
        const Matrix v = Matrix::randomNormal(n, d, rng);
        const Matrix proxy = Matrix::randomNormal(n, n, rng);
        const Matrix dense_mask =
            topkMask(proxy, std::max<size_t>(1, n / 4));
        const SparseMask mask = SparseMask::fromDense(dense_mask);
        const float sc = 1.0f / std::sqrt(static_cast<float>(d));

        const Matrix sparse = sparseMaskedAttention(q, k, v, mask, sc);
        const Matrix dense = matmul(
            rowSoftmaxMasked(scale(matmulBT(q, k), sc), dense_mask), v);
        EXPECT_TRUE(bitIdentical(sparse, dense)) << "n=" << n;
    }
}

/** Inference-only hook serving a fixed mask (sparse path permitted). */
class FixedMaskHook : public AttentionHook
{
  public:
    explicit FixedMaskHook(Matrix mask) : mask_(std::move(mask)) {}
    void beginLayer(size_t, const Matrix &) override {}
    Matrix selectMask(size_t, size_t, bool) override { return mask_; }
    void observeScores(size_t, size_t, const Matrix &) override
    {
        ++observe_calls;
    }
    Matrix scoreGradient(size_t, size_t) override { return {}; }
    bool wantsFullScores() const override { return false; }

    int observe_calls = 0;

  private:
    Matrix mask_;
};

TEST(SimdKernels, AttentionSparsePathBitIdenticalToForcedDense)
{
    // Pin the CSR sparse-rows backend: this test asserts bit-identity
    // to dense, which the streaming backend deliberately does not
    // promise (so a DOTA_ATTN=streaming environment must not leak in).
    ScopedAttnChoice pin(AttnChoice::Sparse);
    Rng rng(50);
    const size_t n = 40, dim = 32, heads = 4;
    MultiHeadAttention attn("t", 0, dim, heads, rng);
    const Matrix x = Matrix::randomNormal(n, dim, rng);
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    FixedMaskHook hook(topkMask(proxy, 10));
    attn.setHook(&hook);

    attn.setForceDense(true);
    const Matrix dense = attn.forward(x);
    EXPECT_FALSE(attn.lastForwardSparse());
    const int observe_dense = hook.observe_calls;
    EXPECT_EQ(observe_dense, static_cast<int>(heads));

    attn.setForceDense(false);
    const Matrix sparse = attn.forward(x);
    EXPECT_TRUE(attn.lastForwardSparse());
    // observeScores is skipped on the sparse path...
    EXPECT_EQ(hook.observe_calls, observe_dense);
    // ...the score/probability caches stay empty...
    for (size_t h = 0; h < heads; ++h) {
        EXPECT_TRUE(attn.lastScores()[h].empty());
        EXPECT_TRUE(attn.lastAttention()[h].empty());
        EXPECT_FALSE(attn.lastMasks()[h].empty());
    }
    // ...and the output is bitwise the dense masked result.
    EXPECT_TRUE(bitIdentical(sparse, dense));
}

} // namespace
} // namespace dota
