/**
 * @file
 * Tests for multi-head self-attention: forward semantics against a
 * reference implementation, hook interception, and gradient checks.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.hpp"
#include "nn/gradcheck.hpp"

namespace dota {
namespace {

/** Reference single-pass attention computed straight from the formulas. */
Matrix
referenceAttention(const Matrix &x, const Matrix &wq, const Matrix &wk,
                   const Matrix &wv, const Matrix &wo, size_t heads)
{
    const size_t n = x.rows(), d = x.cols(), dh = d / heads;
    const Matrix q = matmul(x, wq), k = matmul(x, wk), v = matmul(x, wv);
    Matrix z(n, d);
    for (size_t h = 0; h < heads; ++h) {
        Matrix qh(n, dh), kh(n, dh), vh(n, dh);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < dh; ++j) {
                qh(i, j) = q(i, h * dh + j);
                kh(i, j) = k(i, h * dh + j);
                vh(i, j) = v(i, h * dh + j);
            }
        const Matrix s =
            scale(matmulBT(qh, kh), 1.0f / std::sqrt(float(dh)));
        const Matrix a = rowSoftmax(s);
        const Matrix zh = matmul(a, vh);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < dh; ++j)
                z(i, h * dh + j) = zh(i, j);
    }
    return matmul(z, wo);
}

/** Hook that records calls and serves a fixed retention top-k would. */
class RecordingHook : public AttentionHook
{
  public:
    void
    beginLayer(size_t layer, const Matrix &x) override
    {
        begin_calls.push_back(layer);
        last_x = x;
    }
    void
    observeQK(size_t, size_t, const Matrix &q, const Matrix &k) override
    {
        qk_calls++;
        last_q = q;
        last_k = k;
    }
    Matrix
    selectMask(size_t, size_t, bool) override
    {
        select_calls++;
        return mask;
    }
    void
    observeScores(size_t, size_t, const Matrix &s) override
    {
        observe_calls++;
        last_scores = s;
    }
    Matrix
    scoreGradient(size_t, size_t) override
    {
        grad_calls++;
        return grad;
    }

    std::vector<size_t> begin_calls;
    int qk_calls = 0, select_calls = 0, observe_calls = 0, grad_calls = 0;
    Matrix mask, grad, last_x, last_q, last_k, last_scores;
};

TEST(Attention, MatchesReference)
{
    Rng rng(81);
    MultiHeadAttention attn("a", 0, 16, 4, rng);
    const Matrix x = Matrix::randomNormal(6, 16, rng);
    const Matrix out = attn.forward(x);

    std::vector<Parameter *> ps;
    attn.collectParams(ps);
    const Matrix ref = referenceAttention(x, ps[0]->value, ps[1]->value,
                                          ps[2]->value, ps[3]->value, 4);
    EXPECT_TRUE(Matrix::allClose(out, ref, 1e-4));
}

TEST(Attention, AttentionRowsSumToOne)
{
    Rng rng(82);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    attn.forward(x);
    for (const Matrix &a : attn.lastAttention()) {
        for (size_t r = 0; r < a.rows(); ++r) {
            double sum = 0.0;
            for (size_t c = 0; c < a.cols(); ++c)
                sum += a(r, c);
            EXPECT_NEAR(sum, 1.0, 1e-5);
        }
    }
}

TEST(Attention, CausalZeroesFuture)
{
    Rng rng(83);
    MultiHeadAttention attn("a", 0, 8, 2, rng, /*causal=*/true);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    attn.forward(x);
    for (const Matrix &a : attn.lastAttention())
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = r + 1; c < a.cols(); ++c)
                EXPECT_FLOAT_EQ(a(r, c), 0.0f);
}

TEST(Attention, CausalFirstTokenAttendsSelf)
{
    Rng rng(84);
    MultiHeadAttention attn("a", 0, 8, 2, rng, /*causal=*/true);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    attn.forward(x);
    for (const Matrix &a : attn.lastAttention())
        EXPECT_NEAR(a(0, 0), 1.0, 1e-6);
}

TEST(Attention, HookCallOrderAndPayloads)
{
    Rng rng(85);
    MultiHeadAttention attn("a", 3, 8, 2, rng);
    RecordingHook hook;
    attn.setHook(&hook);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    attn.forward(x);
    ASSERT_EQ(hook.begin_calls.size(), 1u);
    EXPECT_EQ(hook.begin_calls[0], 3u); // layer index passed through
    EXPECT_EQ(hook.qk_calls, 2);
    EXPECT_EQ(hook.select_calls, 2);
    EXPECT_EQ(hook.observe_calls, 2);
    EXPECT_TRUE(Matrix::allClose(hook.last_x, x));
    EXPECT_EQ(hook.last_q.rows(), 4u);
    EXPECT_EQ(hook.last_q.cols(), 4u); // head_dim
    // Observed scores are Q K^T of the last head.
    EXPECT_TRUE(Matrix::allClose(hook.last_scores,
                                 matmulBT(hook.last_q, hook.last_k),
                                 1e-4));
}

TEST(Attention, HookMaskapplied)
{
    Rng rng(86);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    RecordingHook hook;
    // Only the diagonal is kept: attention becomes the identity mix.
    hook.mask = Matrix::identity(4);
    attn.setHook(&hook);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    attn.forward(x);
    for (const Matrix &a : attn.lastAttention())
        for (size_t r = 0; r < 4; ++r)
            for (size_t c = 0; c < 4; ++c)
                EXPECT_NEAR(a(r, c), r == c ? 1.0 : 0.0, 1e-6);
}

TEST(Attention, EmptyHookMaskMeansDense)
{
    Rng rng(87);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    RecordingHook hook; // mask left empty
    attn.setHook(&hook);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    const Matrix hooked = attn.forward(x);
    attn.setHook(nullptr);
    const Matrix dense = attn.forward(x);
    EXPECT_TRUE(Matrix::allClose(hooked, dense, 1e-6));
}

TEST(Attention, GradCheckDense)
{
    Rng rng(88);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    const Matrix w = Matrix::randomNormal(4, 8, rng);

    attn.zeroGrad();
    attn.forward(x);
    attn.backward(w);

    auto loss = [&]() {
        const Matrix y = attn.forward(x);
        double acc = 0.0;
        for (size_t i = 0; i < y.size(); ++i)
            acc += static_cast<double>(w.data()[i]) * y.data()[i];
        return acc;
    };
    std::vector<Parameter *> ps;
    attn.collectParams(ps);
    Rng probe(3);
    for (Parameter *p : ps) {
        auto res = checkGradient(loss, *p, 6, 1e-3, probe);
        EXPECT_LT(res.max_rel_err, 4e-2) << p->name;
    }
}

TEST(Attention, GradCheckMasked)
{
    Rng rng(89);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    RecordingHook hook;
    Rng mask_rng(90);
    // Random mask with diagonal kept.
    hook.mask = Matrix(4, 4);
    for (size_t r = 0; r < 4; ++r) {
        hook.mask(r, r) = 1.0f;
        hook.mask(r, mask_rng.uniformInt(4)) = 1.0f;
    }
    attn.setHook(&hook);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    const Matrix w = Matrix::randomNormal(4, 8, rng);

    attn.zeroGrad();
    attn.forward(x);
    attn.backward(w);

    auto loss = [&]() {
        const Matrix y = attn.forward(x);
        double acc = 0.0;
        for (size_t i = 0; i < y.size(); ++i)
            acc += static_cast<double>(w.data()[i]) * y.data()[i];
        return acc;
    };
    std::vector<Parameter *> ps;
    attn.collectParams(ps);
    Rng probe(4);
    for (Parameter *p : ps) {
        auto res = checkGradient(loss, *p, 5, 1e-3, probe);
        EXPECT_LT(res.max_rel_err, 4e-2) << p->name;
    }
}

TEST(Attention, InputGradCheckDense)
{
    Rng rng(91);
    MultiHeadAttention attn("a", 0, 8, 2, rng);
    Matrix x = Matrix::randomNormal(3, 8, rng);
    const Matrix w = Matrix::randomNormal(3, 8, rng);
    attn.forward(x);
    const Matrix dx = attn.backward(w);

    // Central differences on a few input elements.
    Rng probe(5);
    for (int trial = 0; trial < 6; ++trial) {
        const size_t idx = probe.uniformInt(x.size());
        const float saved = x.data()[idx];
        const double eps = 1e-3;
        auto lossAt = [&](float v) {
            x.data()[idx] = v;
            const Matrix y = attn.forward(x);
            double acc = 0.0;
            for (size_t i = 0; i < y.size(); ++i)
                acc += static_cast<double>(w.data()[i]) * y.data()[i];
            return acc;
        };
        const double up = lossAt(saved + static_cast<float>(eps));
        const double down = lossAt(saved - static_cast<float>(eps));
        x.data()[idx] = saved;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(dx.data()[idx], numeric,
                    5e-2 * std::max(1.0, std::abs(numeric)));
    }
}

TEST(Attention, CausalMaskCachedAcrossSameLengthForwards)
{
    // Regression: the causal mask used to be rebuilt (an n x n
    // allocation) on every forward; it is now cached per length.
    Rng rng(88);
    MultiHeadAttention attn("a", 0, 8, 2, rng, /*causal=*/true);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    EXPECT_EQ(attn.causalMaskBuilds(), 0u);

    const Matrix first = attn.forward(x);
    EXPECT_EQ(attn.causalMaskBuilds(), 1u);
    const Matrix second = attn.forward(x);
    const Matrix third = attn.forward(x);
    EXPECT_EQ(attn.causalMaskBuilds(), 1u)
        << "same-length forwards must reuse the cached causal mask";
    EXPECT_TRUE(Matrix::allClose(first, second, 0.0f));
    EXPECT_TRUE(Matrix::allClose(first, third, 0.0f));

    // A different length rebuilds once, then caches again.
    const Matrix y = Matrix::randomNormal(4, 8, rng);
    attn.forward(y);
    EXPECT_EQ(attn.causalMaskBuilds(), 2u);
    attn.forward(y);
    EXPECT_EQ(attn.causalMaskBuilds(), 2u);

    // The cached mask itself is the exact lower-triangular pattern.
    const Matrix &m = attn.cachedCausalMask(4);
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), c <= r ? 1.0f : 0.0f);
}

} // namespace
} // namespace dota
