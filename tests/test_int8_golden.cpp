/**
 * @file
 * Golden-value regression test for the int8 inference path: a greedy
 * int8 generation trajectory plus fixed-seed classifier/LM logits are
 * checked in under tests/data/ and must reproduce bit-for-bit at
 * DOTA_THREADS=1 *and* DOTA_THREADS=8. Unlike the fp golden
 * (test_training_golden.cpp), thread invariance here is by arithmetic —
 * every integer GEMM is exact — not by a reduction-order convention.
 *
 * Regenerate (after an intentional numerics change) with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_parallel_tests \
 *       --gtest_filter='Int8Golden.*'
 * and commit the rewritten tests/data/golden_int8_infer.txt.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/int8_infer.hpp"
#include "tensor/ops.hpp"

namespace dota {
namespace {

using Trajectories = std::map<std::string, std::vector<double>>;

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) + "/golden_int8_infer.txt";
}

std::vector<int>
randomIds(size_t n, int vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> ids(n);
    for (auto &id : ids)
        id = static_cast<int>(rng.uniformInt(vocab));
    return ids;
}

/**
 * The recorded trajectories: greedy generation tokens, the last row of
 * the LM logits over the generated sequence, and one classifier logits
 * row — all from fixed seeds.
 */
Trajectories
runTrajectories()
{
    Trajectories out;

    TransformerConfig lm_cfg;
    lm_cfg.dim = 32;
    lm_cfg.heads = 4;
    lm_cfg.layers = 2;
    lm_cfg.ffn_dim = 64;
    lm_cfg.vocab = 48;
    lm_cfg.max_seq = 64;
    lm_cfg.seed = 7;
    CausalLM lm(lm_cfg);
    std::vector<std::vector<int>> lm_calib;
    for (int i = 0; i < 4; ++i)
        lm_calib.push_back(randomIds(20, lm_cfg.vocab, 700 + i));
    const Int8Plan lm_plan = quantizeLM(lm, calibrateLM(lm, lm_calib));

    const std::vector<int> tokens =
        int8Generate(lm, lm_plan, {1, 2, 3}, 12);
    for (int t : tokens)
        out["tokens"].push_back(static_cast<double>(t));
    const Matrix logits = int8Forward(lm, lm_plan, tokens);
    for (size_t j = 0; j < 8; ++j)
        out["lm_logits"].push_back(logits(logits.rows() - 1, j));

    TransformerConfig cl_cfg;
    cl_cfg.in_dim = 12;
    cl_cfg.dim = 32;
    cl_cfg.heads = 4;
    cl_cfg.layers = 2;
    cl_cfg.ffn_dim = 64;
    cl_cfg.classes = 5;
    cl_cfg.max_seq = 32;
    cl_cfg.seed = 3;
    TransformerClassifier cl(cl_cfg);
    Rng rng(71);
    std::vector<Matrix> cl_calib;
    for (int i = 0; i < 4; ++i)
        cl_calib.push_back(Matrix::randomNormal(10, cl_cfg.in_dim, rng));
    const Int8Plan cl_plan =
        quantizeClassifier(cl, calibrateClassifier(cl, cl_calib));
    const Matrix features = Matrix::randomNormal(10, cl_cfg.in_dim, rng);
    const Matrix cl_logits = int8Forward(cl, cl_plan, features);
    for (size_t j = 0; j < cl_logits.cols(); ++j)
        out["classifier"].push_back(cl_logits(0, j));

    return out;
}

/** Values serialized as hex floats so the round trip is bit-exact. */
std::string
formatValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

Trajectories
readGolden()
{
    std::ifstream in(goldenPath());
    Trajectories out;
    std::string line, current;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string head;
        ls >> head;
        if (head == "task") {
            ls >> current;
            continue;
        }
        out[current].push_back(std::strtod(head.c_str(), nullptr));
    }
    return out;
}

void
writeGolden(const Trajectories &trajectories)
{
    std::ofstream out(goldenPath());
    out << "# Int8 inference trajectories (greedy generation tokens, LM\n"
        << "# and classifier logits), fixed seeds, DOTA_THREADS=1.\n"
        << "# Regenerate with DOTA_REGEN_GOLDEN=1 (see "
           "test_int8_golden.cpp); values are C99 hex floats.\n";
    for (const auto &[name, values] : trajectories) {
        out << "task " << name << "\n";
        for (double v : values)
            out << formatValue(v) << "\n";
    }
}

void
expectMatchesGolden(const Trajectories &got, const Trajectories &golden)
{
    for (const auto &[name, values] : got) {
        auto it = golden.find(name);
        ASSERT_NE(it, golden.end()) << "task " << name;
        ASSERT_EQ(it->second.size(), values.size()) << "task " << name;
        for (size_t s = 0; s < values.size(); ++s)
            EXPECT_EQ(values[s], it->second[s])
                << "task " << name << " index " << s;
    }
}

TEST(Int8Golden, SerialTrajectoriesMatchGoldenFile)
{
    Trajectories got;
    {
        ThreadPool::setGlobalConcurrency(1);
        got = runTrajectories();
        ThreadPool::setGlobalConcurrency(configuredThreads());
    }
    if (envFlag("DOTA_REGEN_GOLDEN")) {
        writeGolden(got);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    const Trajectories golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    expectMatchesGolden(got, golden);
}

TEST(Int8Golden, ParallelTrajectoriesMatchGoldenExactly)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    const Trajectories golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    ThreadPool::setGlobalConcurrency(8);
    const Trajectories got = runTrajectories();
    ThreadPool::setGlobalConcurrency(configuredThreads());
    expectMatchesGolden(got, golden);
}

TEST(Int8Golden, BigGemmThreadCountInvariant)
{
    // 160^3 = 4.1M MACs sits above the parallel-dispatch threshold
    // (2^21), so the 8-thread run takes the parallelFor path; the raw
    // s32 outputs must still be identical to the serial run.
    Rng rng(72);
    const size_t n = 160;
    const Matrix fa = Matrix::randomNormal(n, n, rng);
    const Matrix fb = Matrix::randomNormal(n, n, rng);
    const U8Tensor a = quantizeU8(fa, 3.0f / kU8ActQmax);
    const Int8Tensor b = quantizeS8(fb, 3.0f / kS8Qmax);

    std::vector<int32_t> serial(n * n), parallel(n * n);
    ThreadPool::setGlobalConcurrency(1);
    int8GemmBT(a, b, serial.data());
    ThreadPool::setGlobalConcurrency(8);
    int8GemmBT(a, b, parallel.data());
    ThreadPool::setGlobalConcurrency(configuredThreads());
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace dota
