/**
 * @file
 * Unit tests for quantization and multi-precision support.
 */
#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace dota {
namespace {

TEST(Precision, BitsAndNames)
{
    EXPECT_EQ(precisionBits(Precision::FX16), 16);
    EXPECT_EQ(precisionBits(Precision::INT4), 4);
    EXPECT_EQ(precisionName(Precision::INT2), "INT2");
    EXPECT_EQ(precisionFromName("FX16"), Precision::FX16);
    EXPECT_EQ(precisionFromName("INT8"), Precision::INT8);
}

TEST(Precision, RmmuThroughputQuadratic)
{
    // Figure 7: quadratic throughput scaling with precision.
    EXPECT_EQ(rmmuMacsPerPe(Precision::FX16), 1);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT8), 4);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT4), 16);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT2), 64);
    EXPECT_EQ(rmmuMacsPerPe(Precision::FP32), 0);
}

TEST(Quant, ScaleMapsMaxAbs)
{
    Matrix m(1, 3, std::vector<float>{-7.0f, 3.5f, 1.0f});
    const QuantParams p = chooseSymmetricScale(m, 8);
    EXPECT_EQ(p.qmax(), 127);
    EXPECT_EQ(p.qmin(), -128);
    EXPECT_NEAR(p.scale, 7.0 / 127.0, 1e-6);
}

TEST(Quant, ZeroTensorSafe)
{
    Matrix m(2, 2, 0.0f);
    const QuantizedMatrix q = quantize(m, 4);
    const Matrix back = dequantize(q);
    EXPECT_TRUE(Matrix::allClose(back, m));
}

class QuantRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfStep)
{
    const int bits = GetParam();
    Rng rng(31);
    const Matrix m = Matrix::randomNormal(16, 16, rng, 0.0f, 2.0f);
    const QuantizedMatrix q = quantize(m, bits);
    const Matrix back = dequantize(q);
    const double half_step = 0.5 * q.params().scale + 1e-6;
    EXPECT_LE(Matrix::maxAbsDiff(m, back), half_step);
}

TEST_P(QuantRoundTrip, CodesInRange)
{
    const int bits = GetParam();
    Rng rng(32);
    const Matrix m = Matrix::randomNormal(8, 8, rng, 0.0f, 5.0f);
    const QuantizedMatrix q = quantize(m, bits);
    for (size_t r = 0; r < q.rows(); ++r)
        for (size_t c = 0; c < q.cols(); ++c) {
            EXPECT_GE(q.at(r, c), q.params().qmin());
            EXPECT_LE(q.at(r, c), q.params().qmax());
        }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, QuantRoundTrip,
                         ::testing::Values(2, 4, 8, 16));

TEST(Quant, FakeQuantIdempotent)
{
    Rng rng(33);
    const Matrix m = Matrix::randomNormal(8, 8, rng);
    const Matrix once = fakeQuant(m, 4);
    const Matrix twice = fakeQuant(once, 4);
    EXPECT_LE(Matrix::maxAbsDiff(once, twice),
              2e-3); // grid is stable up to scale re-estimation
}

TEST(Quant, FakeQuant32IsIdentity)
{
    Rng rng(34);
    const Matrix m = Matrix::randomNormal(4, 4, rng);
    EXPECT_TRUE(Matrix::allClose(fakeQuant(m, 32), m));
}

TEST(Quant, MorePrecisionLessError)
{
    Rng rng(35);
    const Matrix m = Matrix::randomNormal(32, 32, rng);
    double prev = 1e9;
    for (int bits : {2, 4, 8}) {
        const double err = mse(m, fakeQuant(m, bits));
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(Quant, IntegerGemmMatchesFloatOfQuantizedOperands)
{
    Rng rng(36);
    const Matrix a = Matrix::randomNormal(5, 8, rng);
    const Matrix b = Matrix::randomNormal(6, 8, rng);
    const QuantizedMatrix qa = quantize(a, 8);
    const QuantizedMatrix qb = quantize(b, 8);
    // The integer datapath must equal the float product of the
    // dequantized operands exactly (no extra rounding inside PSUM).
    const Matrix ref = matmulBT(dequantize(qa), dequantize(qb));
    const Matrix out = quantizedMatmulBT(qa, qb);
    EXPECT_LT(Matrix::maxAbsDiff(ref, out), 1e-4);
}

TEST(Quant, IntegerGemmApproximatesFloat)
{
    Rng rng(37);
    const Matrix a = Matrix::randomNormal(8, 16, rng);
    const Matrix b = Matrix::randomNormal(8, 16, rng);
    const Matrix ref = matmulBT(a, b);
    const Matrix out = quantizedMatmulBT(quantize(a, 8), quantize(b, 8));
    // INT8 keeps relative error small on well-conditioned inputs.
    EXPECT_LT(mse(ref, out) / (mse(ref, Matrix(8, 8)) + 1e-9), 1e-3);
}

TEST(Quant, PackedBytes)
{
    QuantizedMatrix q(4, 4, QuantParams{1.0f, 4});
    EXPECT_EQ(q.packedBytes(), 8u); // 16 codes * 4 bits
    QuantizedMatrix q2(3, 3, QuantParams{1.0f, 2});
    EXPECT_EQ(q2.packedBytes(), 3u); // 18 bits -> 3 bytes
}

} // namespace
} // namespace dota
