/**
 * @file
 * Unit tests for quantization and multi-precision support.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/int8_gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace dota {
namespace {

TEST(Precision, BitsAndNames)
{
    EXPECT_EQ(precisionBits(Precision::FX16), 16);
    EXPECT_EQ(precisionBits(Precision::INT4), 4);
    EXPECT_EQ(precisionName(Precision::INT2), "INT2");
    EXPECT_EQ(precisionFromName("FX16"), Precision::FX16);
    EXPECT_EQ(precisionFromName("INT8"), Precision::INT8);
}

TEST(Precision, RmmuThroughputQuadratic)
{
    // Figure 7: quadratic throughput scaling with precision.
    EXPECT_EQ(rmmuMacsPerPe(Precision::FX16), 1);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT8), 4);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT4), 16);
    EXPECT_EQ(rmmuMacsPerPe(Precision::INT2), 64);
    EXPECT_EQ(rmmuMacsPerPe(Precision::FP32), 0);
}

TEST(Quant, ScaleMapsMaxAbs)
{
    Matrix m(1, 3, std::vector<float>{-7.0f, 3.5f, 1.0f});
    const QuantParams p = chooseSymmetricScale(m, 8);
    EXPECT_EQ(p.qmax(), 127);
    EXPECT_EQ(p.qmin(), -128);
    EXPECT_NEAR(p.scale, 7.0 / 127.0, 1e-6);
}

TEST(Quant, ZeroTensorSafe)
{
    Matrix m(2, 2, 0.0f);
    const QuantizedMatrix q = quantize(m, 4);
    const Matrix back = dequantize(q);
    EXPECT_TRUE(Matrix::allClose(back, m));
}

class QuantRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfStep)
{
    const int bits = GetParam();
    Rng rng(31);
    const Matrix m = Matrix::randomNormal(16, 16, rng, 0.0f, 2.0f);
    const QuantizedMatrix q = quantize(m, bits);
    const Matrix back = dequantize(q);
    const double half_step = 0.5 * q.params().scale + 1e-6;
    EXPECT_LE(Matrix::maxAbsDiff(m, back), half_step);
}

TEST_P(QuantRoundTrip, CodesInRange)
{
    const int bits = GetParam();
    Rng rng(32);
    const Matrix m = Matrix::randomNormal(8, 8, rng, 0.0f, 5.0f);
    const QuantizedMatrix q = quantize(m, bits);
    for (size_t r = 0; r < q.rows(); ++r)
        for (size_t c = 0; c < q.cols(); ++c) {
            EXPECT_GE(q.at(r, c), q.params().qmin());
            EXPECT_LE(q.at(r, c), q.params().qmax());
        }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, QuantRoundTrip,
                         ::testing::Values(2, 4, 8, 16));

TEST(Quant, FakeQuantIdempotent)
{
    Rng rng(33);
    const Matrix m = Matrix::randomNormal(8, 8, rng);
    const Matrix once = fakeQuant(m, 4);
    const Matrix twice = fakeQuant(once, 4);
    EXPECT_LE(Matrix::maxAbsDiff(once, twice),
              2e-3); // grid is stable up to scale re-estimation
}

TEST(Quant, FakeQuant32IsIdentity)
{
    Rng rng(34);
    const Matrix m = Matrix::randomNormal(4, 4, rng);
    EXPECT_TRUE(Matrix::allClose(fakeQuant(m, 32), m));
}

TEST(Quant, MorePrecisionLessError)
{
    Rng rng(35);
    const Matrix m = Matrix::randomNormal(32, 32, rng);
    double prev = 1e9;
    for (int bits : {2, 4, 8}) {
        const double err = mse(m, fakeQuant(m, bits));
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(Quant, IntegerGemmMatchesFloatOfQuantizedOperands)
{
    Rng rng(36);
    const Matrix a = Matrix::randomNormal(5, 8, rng);
    const Matrix b = Matrix::randomNormal(6, 8, rng);
    const QuantizedMatrix qa = quantize(a, 8);
    const QuantizedMatrix qb = quantize(b, 8);
    // The integer datapath must equal the float product of the
    // dequantized operands exactly (no extra rounding inside PSUM).
    const Matrix ref = matmulBT(dequantize(qa), dequantize(qb));
    const Matrix out = quantizedMatmulBT(qa, qb);
    EXPECT_LT(Matrix::maxAbsDiff(ref, out), 1e-4);
}

TEST(Quant, IntegerGemmApproximatesFloat)
{
    Rng rng(37);
    const Matrix a = Matrix::randomNormal(8, 16, rng);
    const Matrix b = Matrix::randomNormal(8, 16, rng);
    const Matrix ref = matmulBT(a, b);
    const Matrix out = quantizedMatmulBT(quantize(a, 8), quantize(b, 8));
    // INT8 keeps relative error small on well-conditioned inputs.
    EXPECT_LT(mse(ref, out) / (mse(ref, Matrix(8, 8)) + 1e-9), 1e-3);
}

TEST(Quant, SaturatesAtGridEdges)
{
    // A scale calibrated for |x| <= 1 must clamp out-of-range values to
    // the edge codes instead of wrapping.
    Matrix m(1, 4, std::vector<float>{100.0f, -100.0f, 0.5f, -0.25f});
    QuantParams p;
    p.scale = 1.0f / 127.0f;
    p.bits = 8;
    const QuantizedMatrix q = quantize(m, p);
    EXPECT_EQ(q.at(0, 0), p.qmax());
    EXPECT_EQ(q.at(0, 1), p.qmin());
    EXPECT_EQ(q.at(0, 2), 64);  // round(0.5 * 127) = 64
    EXPECT_EQ(q.at(0, 3), -32); // round(-0.25 * 127) = -32
}

TEST(Quant, DegenerateScaleIsSafe)
{
    // scale <= 0 or non-finite degrades to 1 instead of dividing by it.
    Matrix m(1, 3, std::vector<float>{1.0f, -2.0f, 0.25f});
    for (float bad : {0.0f, -3.0f, std::numeric_limits<float>::quiet_NaN(),
                      std::numeric_limits<float>::infinity()}) {
        QuantParams p;
        p.scale = bad;
        p.bits = 8;
        const QuantizedMatrix q = quantize(m, p);
        EXPECT_EQ(q.at(0, 0), 1);
        EXPECT_EQ(q.at(0, 1), -2);
        EXPECT_EQ(q.at(0, 2), 0);
    }
}

TEST(Quant, EmptyTensorCalibration)
{
    const Matrix m; // 0 x 0
    const QuantParams p = chooseSymmetricScale(m, 8);
    EXPECT_EQ(p.scale, 1.0f);
    const QuantizedMatrix q = quantize(m, p);
    EXPECT_EQ(q.rows(), 0u);
    EXPECT_EQ(q.cols(), 0u);
}

TEST(Quant, NonFiniteElementsDoNotPoisonCalibration)
{
    // Calibration skips NaN/Inf when picking the scale; quantization
    // then maps NaN to 0 and saturates Inf at the grid edge.
    Matrix m(1, 4,
             std::vector<float>{1.0f, std::numeric_limits<float>::quiet_NaN(),
                                std::numeric_limits<float>::infinity(),
                                -2.0f});
    const QuantParams p = chooseSymmetricScale(m, 8);
    EXPECT_NEAR(p.scale, 2.0 / 127.0, 1e-6);
    const QuantizedMatrix q = quantize(m, p);
    EXPECT_EQ(q.at(0, 1), 0);
    EXPECT_EQ(q.at(0, 2), p.qmax());
    EXPECT_EQ(q.at(0, 3), p.qmin() + 1); // symmetric round: -127
}

TEST(Quant, ScaleFromMaxAbsGuards)
{
    EXPECT_EQ(symmetricScaleFromMaxAbs(0.0f, 127), 1.0f);
    EXPECT_EQ(symmetricScaleFromMaxAbs(-1.0f, 127), 1.0f);
    EXPECT_EQ(
        symmetricScaleFromMaxAbs(std::numeric_limits<float>::quiet_NaN(), 127),
        1.0f);
    EXPECT_EQ(symmetricScaleFromMaxAbs(
                  std::numeric_limits<float>::infinity(), 127),
              1.0f);
    EXPECT_NEAR(symmetricScaleFromMaxAbs(12.7f, 127), 0.1f, 1e-6);
}

TEST(Quant, U8ZeroPointRoundTrip)
{
    // The u8 activation encoding stores 7-bit symmetric codes shifted by
    // zero point 64: every byte lies in [1, 127] (the saturation-free
    // maddubs contract) and dequantize() removes the shift exactly.
    Rng rng(38);
    const Matrix m = Matrix::randomNormal(4, 6, rng);
    const float scale = symmetricScaleFromMaxAbs(
        static_cast<float>(Matrix::maxAbsDiff(m, Matrix(4, 6))), kU8ActQmax);
    const U8Tensor t = quantizeU8(m, scale);
    EXPECT_EQ(t.zero_point, kU8ZeroPoint);
    for (uint8_t c : t.codes) {
        EXPECT_GE(c, kU8ZeroPoint - kU8ActQmax);
        EXPECT_LE(c, kU8ZeroPoint + kU8ActQmax);
    }
    EXPECT_LE(Matrix::maxAbsDiff(dequantize(t), m), 0.5 * scale + 1e-6);
}

TEST(Quant, S8SaturationAndNaN)
{
    // The s8 B-side grid is symmetric (codes in [-127, 127], never
    // -128) and maps NaN to 0, matching quantizeOne's contract.
    Matrix m(1, 4,
             std::vector<float>{50.0f, -50.0f,
                                std::numeric_limits<float>::quiet_NaN(),
                                0.5f});
    const Int8Tensor t = quantizeS8(m, 1.0f / kS8Qmax);
    EXPECT_EQ(t.codes[0], kS8Qmax);
    EXPECT_EQ(t.codes[1], -kS8Qmax);
    EXPECT_EQ(t.codes[2], 0);
    EXPECT_EQ(t.codes[3], 64);
    // row_sums must agree with the stored codes (zero-point compensation
    // depends on it).
    EXPECT_EQ(t.row_sums[0], 127 - 127 + 0 + 64);
}

TEST(Quant, PackedBytes)
{
    QuantizedMatrix q(4, 4, QuantParams{1.0f, 4});
    EXPECT_EQ(q.packedBytes(), 8u); // 16 codes * 4 bits
    QuantizedMatrix q2(3, 3, QuantParams{1.0f, 2});
    EXPECT_EQ(q2.packedBytes(), 3u); // 18 bits -> 3 bytes
}

} // namespace
} // namespace dota
