/**
 * @file
 * Tests for the end-to-end transformer models and the encoder block.
 */
#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/transformer.hpp"

namespace dota {
namespace {

TransformerConfig
tinyCfg()
{
    TransformerConfig cfg;
    cfg.in_dim = 8;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 32;
    cfg.classes = 3;
    cfg.vocab = 20;
    cfg.max_seq = 24;
    cfg.seed = 5;
    return cfg;
}

TEST(EncoderBlock, ShapePreserved)
{
    Rng rng(101);
    EncoderBlock blk("b", 0, 16, 2, 32, rng);
    const Matrix x = Matrix::randomNormal(6, 16, rng);
    const Matrix y = blk.forward(x);
    EXPECT_EQ(y.rows(), 6u);
    EXPECT_EQ(y.cols(), 16u);
}

TEST(EncoderBlock, ParamCount)
{
    Rng rng(102);
    EncoderBlock blk("b", 0, 16, 2, 32, rng);
    // attn 4*16*16 + ln1 2*16 + fc1 16*32+32 + fc2 32*16+16 + ln2 2*16
    EXPECT_EQ(blk.numParams(),
              4u * 256 + 32 + (512 + 32) + (512 + 16) + 32);
}

TEST(EncoderBlock, GradCheckThroughBlock)
{
    Rng rng(103);
    EncoderBlock blk("b", 0, 8, 2, 16, rng, Activation::GELU);
    const Matrix x = Matrix::randomNormal(4, 8, rng);
    const Matrix w = Matrix::randomNormal(4, 8, rng);

    blk.zeroGrad();
    blk.forward(x);
    blk.backward(w);

    auto loss = [&]() {
        const Matrix y = blk.forward(x);
        double acc = 0.0;
        for (size_t i = 0; i < y.size(); ++i)
            acc += static_cast<double>(w.data()[i]) * y.data()[i];
        return acc;
    };
    std::vector<Parameter *> ps;
    blk.collectParams(ps);
    Rng probe(6);
    for (Parameter *p : ps) {
        auto res = checkGradient(loss, *p, 4, 1e-3, probe);
        EXPECT_LT(res.max_rel_err, 5e-2) << p->name;
    }
}

TEST(Classifier, ForwardShape)
{
    TransformerClassifier model(tinyCfg());
    Rng rng(104);
    const Matrix x = Matrix::randomNormal(10, 8, rng);
    const Matrix logits = model.forward(x);
    EXPECT_EQ(logits.rows(), 1u);
    EXPECT_EQ(logits.cols(), 3u);
}

TEST(Classifier, DeterministicForward)
{
    TransformerClassifier a(tinyCfg()), b(tinyCfg());
    Rng rng(105);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    EXPECT_TRUE(Matrix::allClose(a.forward(x), b.forward(x)));
}

TEST(Classifier, GradFlowsToInputLayer)
{
    TransformerClassifier model(tinyCfg());
    Rng rng(106);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    model.zeroGrad();
    model.forward(x);
    Matrix dl(1, 3, 1.0f);
    model.backward(dl);
    std::vector<Parameter *> ps;
    model.collectParams(ps);
    double total = 0.0;
    for (Parameter *p : ps)
        total += p->grad.frobeniusNorm();
    EXPECT_GT(total, 0.0);
    // Every parameter receives some gradient.
    for (Parameter *p : ps)
        EXPECT_GT(p->grad.frobeniusNorm(), 0.0) << p->name;
}

TEST(Classifier, TrainingReducesLoss)
{
    TransformerConfig cfg = tinyCfg();
    TransformerClassifier model(cfg);
    Rng rng(107);
    // Learn a fixed tiny mapping: 8 samples with random labels.
    std::vector<Matrix> xs;
    std::vector<int> ys;
    for (int i = 0; i < 8; ++i) {
        xs.push_back(Matrix::randomNormal(6, 8, rng));
        ys.push_back(static_cast<int>(rng.uniformInt(3)));
    }
    std::vector<Parameter *> ps;
    model.collectParams(ps);
    AdamConfig acfg;
    acfg.lr = 3e-3;
    Adam opt(ps, acfg);
    double first = 0.0, last = 0.0;
    for (int step = 0; step < 40; ++step) {
        opt.zeroGrad();
        double loss = 0.0;
        for (size_t i = 0; i < xs.size(); ++i) {
            const Matrix logits = model.forward(xs[i]);
            Matrix dl;
            loss += softmaxCrossEntropy(logits, {ys[i]}, dl);
            model.backward(dl);
        }
        if (step == 0)
            first = loss;
        last = loss;
        opt.step();
    }
    EXPECT_LT(last, 0.5 * first);
}

TEST(CausalLM, ForwardShape)
{
    CausalLM lm(tinyCfg());
    const std::vector<int> ids{1, 2, 3, 4, 5};
    const Matrix logits = lm.forward(ids);
    EXPECT_EQ(logits.rows(), 5u);
    EXPECT_EQ(logits.cols(), 20u);
}

TEST(CausalLM, CausalityHolds)
{
    // Changing a future token must not affect earlier logits.
    CausalLM lm(tinyCfg());
    std::vector<int> ids{1, 2, 3, 4, 5, 6};
    const Matrix before = lm.forward(ids);
    ids[5] = 9;
    const Matrix after = lm.forward(ids);
    for (size_t r = 0; r < 5; ++r)
        for (size_t c = 0; c < before.cols(); ++c)
            EXPECT_NEAR(before(r, c), after(r, c), 1e-5);
}

TEST(CausalLM, LossIsNextTokenPrediction)
{
    CausalLM lm(tinyCfg());
    const std::vector<int> ids{3, 3, 3, 3};
    const double loss = lm.lmLoss(ids, /*train=*/false);
    EXPECT_GT(loss, 0.0);
    EXPECT_LT(loss, std::log(20.0) + 2.0); // near-uniform at init
}

TEST(CausalLM, TrainingImprovesConstantSequence)
{
    TransformerConfig cfg = tinyCfg();
    cfg.layers = 1;
    CausalLM lm(cfg);
    std::vector<Parameter *> ps;
    lm.collectParams(ps);
    AdamConfig acfg;
    acfg.lr = 5e-3;
    Adam opt(ps, acfg);
    const std::vector<int> ids{7, 7, 7, 7, 7, 7};
    const double before = lm.lmLoss(ids, false);
    for (int step = 0; step < 30; ++step) {
        opt.zeroGrad();
        lm.lmLoss(ids, true);
        opt.step();
    }
    const double after = lm.lmLoss(ids, false);
    EXPECT_LT(after, 0.3 * before);
}

TEST(CausalLM, RejectsOverlongSequence)
{
    CausalLM lm(tinyCfg());
    std::vector<int> ids(25, 1); // max_seq is 24
    EXPECT_DEATH(lm.forward(ids), "exceeds max");
}

} // namespace
} // namespace dota
