/**
 * @file
 * Live KV migration & graceful drain tests (DESIGN.md §15): when a
 * device is killed, drained (`drain:<dev>@<ms>`) or watchdog-flagged,
 * its residents' sealed KV pages move to a healthy arena and decode
 * resumes without re-prefill. The suite pins:
 *
 *  - the measurable win: on the same kill+drain chaos trace, wasted
 *    prefill tokens with migration ON are strictly below the
 *    re-prefill-only baseline, with zero corrupted tokens served;
 *  - graceful drain: on a quiet fleet a drained device's residents
 *    resume elsewhere with attempts == 1 and zero wasted tokens;
 *  - verify-on-arrival: a transfer carrying a page poisoned at the
 *    drain instant is refused whole and only that sequence re-prefills;
 *  - probation: a revived device runs at reduced concurrency until N
 *    clean steps (promotion), transients reset the counter (demotion);
 *  - determinism: bit-identical reports at DOTA_THREADS=1 and 8,
 *    pinned against tests/data/golden_migration.txt.
 *
 * Regenerate the golden after an intentional engine change with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_serve_tests --gtest_filter='Migration.*'
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "serve/engine.hpp"
#include "serve/fault.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

constexpr uint64_t kFaultSeed = 7;

/**
 * The migration chaos scenario: device 0 dies mid-decode and later
 * revives (through probation), device 1 is gracefully drained, device
 * 2 suffers a KV-page corruption, and every step carries a 1%
 * transient-failure chance.
 */
FaultPlan
migrationPlan()
{
    const FaultPlanParse parsed = tryParseFaultPlan(
        "kill:0@30,revive:0@95,drain:1@60,corrupt:2@45,transient:0.01");
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.plan;
}

GenTraceConfig
migrationTrace()
{
    // Long output budgets keep decode work resident across the fault
    // window, so the kill and the drain both find victims to move.
    GenTraceConfig tc = test::smallGenTrace(48, 400.0, 71);
    tc.out_min = 96;
    tc.out_max = 256;
    return tc;
}

EngineConfig
migrationEngine(bool migrate_on)
{
    EngineConfig ec = test::smallEngine(3);
    ec.policy.degrade_depth_1 = 3.0;
    ec.policy.degrade_depth_2 = 6.0;
    ec.batch.watchdog_stall_ms = 25.0;
    ec.migrate.enabled = migrate_on;
    ec.migrate.probation_steps = migrate_on ? 8 : 0;
    return ec;
}

ServeReport
migrationRun(bool migrate_on = true)
{
    const GenerationEngine engine(migrationEngine(migrate_on),
                                  benchmark(BenchmarkId::Text));
    return engine.run(generateGenTrace(migrationTrace()),
                      migrationPlan(), kFaultSeed);
}

/** No token computed from corrupted or lost KV is ever served. */
void
expectNoCorruptedTokenServed(const ServeReport &rep,
                             const GenTrace &trace)
{
    for (const RequestOutcome &out : rep.outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        EXPECT_EQ(out.generated, trace.requests[out.id].output_len)
            << "request " << out.id;
    }
}

// ------------------------------------------------------ measurable win

TEST(Migration, BeatsReprefillOnlyBaselineOnWastedPrefill)
{
    const ServeReport base = migrationRun(/*migrate_on=*/false);
    const ServeReport live = migrationRun(/*migrate_on=*/true);
    const GenTrace trace = generateGenTrace(migrationTrace());

    // The baseline throws resident KV away on every kill/drain; live
    // migration keeps it, so its re-prefill bill is strictly smaller.
    EXPECT_LT(live.gen.wasted_prefill_tokens,
              base.gen.wasted_prefill_tokens);
    EXPECT_GT(live.gen.migrations, 0u);
    EXPECT_GT(live.gen.saved_prefill_tokens, 0u);
    EXPECT_EQ(base.gen.migrations, 0u);
    EXPECT_EQ(base.gen.saved_prefill_tokens, 0u);

    // Both serve only verified tokens and lose no request.
    expectNoCorruptedTokenServed(base, trace);
    expectNoCorruptedTokenServed(live, trace);
    EXPECT_EQ(base.completed + base.shed() + base.failed,
              base.requests);
    EXPECT_EQ(live.completed + live.shed() + live.failed,
              live.requests);

    // Migration telemetry is self-consistent.
    EXPECT_GE(live.gen.migrated_pages, live.gen.migrations);
    EXPECT_EQ(live.gen.migrated_bytes,
              live.gen.migrated_pages *
                  (migrationEngine(true).kv.page_tokens *
                   GenerationEngine(migrationEngine(true),
                                    benchmark(BenchmarkId::Text))
                       .bytesPerToken()));
    EXPECT_LE(live.gen.migration_p50_ms, live.gen.migration_p95_ms);
    EXPECT_LE(live.gen.migration_p95_ms, live.gen.migration_max_ms);
    EXPECT_GE(live.gen.drains, 1u);
}

// ------------------------------------------------------- graceful drain

/**
 * Roomy fault-free fleet for the drain tests: the chaos trace keeps
 * decode work resident at the drain instant, while doubled batch slots
 * and a doubled KV budget guarantee the survivors always have slot and
 * page headroom — so nothing but the drain itself perturbs the run.
 */
EngineConfig
quietEngine()
{
    EngineConfig ec = test::smallEngine(3);
    ec.batch.max_batch_seqs = 8;
    ec.kv.budget_bytes = 64ull << 20;
    return ec;
}

TEST(Migration, DrainedResidentsResumeWithoutReprefill)
{
    // A quiet fleet: no transients, no kills — one planned drain while
    // decode work is resident. Every victim must resume on another
    // device with its KV intact: no re-prefill, no wasted work, and
    // every completion still on its first (and only) attempt.
    const GenerationEngine engine(quietEngine(),
                                  benchmark(BenchmarkId::Text));
    const GenTrace trace = generateGenTrace(migrationTrace());
    const ServeReport rep =
        engine.run(trace, parseFaultPlan("drain:0@30"), kFaultSeed);

    EXPECT_EQ(rep.gen.drains, 1u);
    EXPECT_GT(rep.gen.migrations, 0u);
    EXPECT_EQ(rep.gen.migration_no_target, 0u);
    EXPECT_EQ(rep.gen.migration_poisoned, 0u);
    EXPECT_EQ(rep.gen.wasted_prefill_tokens, 0u);
    EXPECT_EQ(rep.gen.wasted_decode_tokens, 0u);
    EXPECT_EQ(rep.gen.preemptions, 0u);
    EXPECT_EQ(rep.retries, 0u);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_EQ(rep.completed, rep.requests);
    for (const RequestOutcome &out : rep.outcomes) {
        EXPECT_EQ(out.status, RequestStatus::Completed);
        EXPECT_EQ(out.attempts, 1u) << "request " << out.id;
        // Nothing completes on the drained device after the drain.
        if (out.finish_ms > 30.0) {
            EXPECT_NE(out.device, 0);
        }
    }
    expectNoCorruptedTokenServed(rep, trace);
}

TEST(Migration, DisabledPolicyFallsBackToReprefillOnDrain)
{
    EngineConfig ec = quietEngine();
    ec.migrate.enabled = false;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const ServeReport rep = engine.run(generateGenTrace(migrationTrace()),
                                       parseFaultPlan("drain:0@30"),
                                       kFaultSeed);
    // The drain is still honored — but its victims pay the re-prefill.
    EXPECT_EQ(rep.gen.drains, 1u);
    EXPECT_EQ(rep.gen.migrations, 0u);
    EXPECT_GT(rep.gen.wasted_prefill_tokens, 0u);
    EXPECT_GT(rep.failovers, 0u);
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
}

// -------------------------------------------------- verify-on-arrival

TEST(Migration, PoisonedTransferIsRefusedAndReprefilled)
{
    // A page is poisoned while device 0 is mid-step, then the device
    // is killed before the step boundary (steps here are sub-ms, hence
    // the 10 µs gap). The kill voids the in-flight step, so the
    // step-end integrity sweep never runs — the poisoned page genuinely
    // travels inside a transfer image. Verify-on-arrival must refuse
    // that sequence whole (it re-prefills) while its healthy
    // co-residents migrate intact. (A graceful drain can never reach
    // this path: the sweep at its step boundary catches the poison
    // before the evacuation starts — which the zero-corrupt guarantee
    // in the drain tests above relies on.) The hot trace keeps several
    // sequences resident on device 0 at the kill instant.
    GenTraceConfig tc = test::smallGenTrace(48, 800.0, 71);
    tc.out_min = 256;
    tc.out_max = 512;
    const GenerationEngine engine(quietEngine(),
                                  benchmark(BenchmarkId::Text));
    const GenTrace trace = generateGenTrace(tc);
    const ServeReport rep = engine.run(
        trace, parseFaultPlan("corrupt:0@40,kill:0@40.01"), kFaultSeed);

    EXPECT_GE(rep.gen.migration_poisoned, 1u);
    EXPECT_GE(rep.gen.corrupted_pages_detected, 1u);
    // Exactly the poisoned victims re-prefill; the rest stay live.
    EXPECT_GT(rep.gen.migrations, 0u);
    EXPECT_GT(rep.gen.wasted_prefill_tokens, 0u);
    expectNoCorruptedTokenServed(rep, trace);
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
}

// ------------------------------------------------------------ probation

TEST(Migration, RevivedDeviceIsPromotedAfterCleanSteps)
{
    GenTraceConfig tc = test::smallGenTrace(24, 250.0, 23);
    tc.out_min = 64;
    tc.out_max = 128;
    EngineConfig ec = test::smallEngine(2);
    ec.migrate.probation_steps = 4;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const ServeReport rep =
        engine.run(generateGenTrace(tc),
                   parseFaultPlan("kill:0@30,revive:0@60"), kFaultSeed);
    // No transients: the revived device runs its clean steps and is
    // promoted exactly once, never demoted.
    EXPECT_EQ(rep.gen.probation_promotions, 1u);
    EXPECT_EQ(rep.gen.probation_demotions, 0u);
}

TEST(Migration, TransientsDemoteAProbationDevice)
{
    GenTraceConfig tc = test::smallGenTrace(24, 250.0, 23);
    tc.out_min = 64;
    tc.out_max = 128;
    EngineConfig ec = test::smallEngine(2);
    ec.migrate.probation_steps = 6;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const ServeReport rep = engine.run(
        generateGenTrace(tc),
        parseFaultPlan("kill:0@30,revive:0@60,transient:0.2"),
        kFaultSeed);
    // A 20% transient rate inside a 6-clean-step probation window must
    // reset the counter at least once (deterministic under the seed).
    EXPECT_GE(rep.gen.probation_demotions, 1u);
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
}

TEST(Migration, ProbationDisabledReproducesInstantFullDuty)
{
    GenTraceConfig tc = test::smallGenTrace(24, 250.0, 23);
    EngineConfig ec = test::smallEngine(2);
    ec.migrate.probation_steps = 0;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const ServeReport rep =
        engine.run(generateGenTrace(tc),
                   parseFaultPlan("kill:0@30,revive:0@60"), kFaultSeed);
    EXPECT_EQ(rep.gen.probation_promotions, 0u);
    EXPECT_EQ(rep.gen.probation_demotions, 0u);
}

// ---------------------------------------------------------- determinism

TEST(Migration, ReplayableAndThreadCountInvariant)
{
    auto [serial, parallel] =
        test::atBothThreadCounts([] { return migrationRun(true); });
    test::expectIdentical(serial, parallel);
}

// --------------------------------------------------------------- golden

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) + "/golden_migration.txt";
}

/** Pinned fields: headline + the migration/probation telemetry. */
std::vector<std::pair<std::string, std::string>>
pinnedFields(const ServeReport &rep)
{
    auto hex = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%a", v);
        return std::string(buf);
    };
    auto num = [](size_t v) { return std::to_string(v); };
    const GenMetrics &g = rep.gen;
    return {
        {"completed", num(rep.completed)},
        {"failed", num(rep.failed)},
        {"shed", num(rep.shed())},
        {"retries", num(rep.retries)},
        {"failovers", num(rep.failovers)},
        {"transient_errors", num(rep.transient_errors)},
        {"steps", num(g.steps)},
        {"prefill_tokens", num(g.prefill_tokens)},
        {"decode_tokens", num(g.decode_tokens)},
        {"output_tokens", num(g.output_tokens)},
        {"kv_peak_pages", num(g.kv_peak_pages)},
        {"wasted_prefill_tokens", num(g.wasted_prefill_tokens)},
        {"wasted_decode_tokens", num(g.wasted_decode_tokens)},
        {"corrupted_pages_detected", num(g.corrupted_pages_detected)},
        {"quarantined_pages", num(g.quarantined_pages)},
        {"drains", num(g.drains)},
        {"migrations", num(g.migrations)},
        {"migrated_pages", num(g.migrated_pages)},
        {"migrated_bytes", num(g.migrated_bytes)},
        {"migration_no_target", num(g.migration_no_target)},
        {"migration_poisoned", num(g.migration_poisoned)},
        {"saved_prefill_tokens", num(g.saved_prefill_tokens)},
        {"saved_decode_tokens", num(g.saved_decode_tokens)},
        {"migration_p50_ms", hex(g.migration_p50_ms)},
        {"migration_p95_ms", hex(g.migration_p95_ms)},
        {"migration_max_ms", hex(g.migration_max_ms)},
        {"probation_promotions", num(g.probation_promotions)},
        {"probation_demotions", num(g.probation_demotions)},
        {"ttft_p50_ms", hex(g.ttft_p50_ms)},
        {"recovery_p50_ms", hex(g.recovery_p50_ms)},
        {"horizon_ms", hex(rep.horizon_ms)},
    };
}

std::map<std::string, std::string>
readGolden()
{
    std::ifstream in(goldenPath());
    std::map<std::string, std::string> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, value;
        if (ls >> key >> value)
            out[key] = value;
    }
    return out;
}

void
writeGolden(const std::vector<std::pair<std::string, std::string>> &kv)
{
    std::ofstream out(goldenPath());
    out << "# GenerationEngine live-migration golden run (see "
           "test_migration.cpp):\n"
        << "# 48 Text prompts, poisson 400 req/s seed 71, 3x DOTA-F,\n"
        << "# fault plan kill:0@30,revive:0@95,drain:1@60,corrupt:2@45,"
           "transient:0.01\n"
        << "# at fault seed 7, watchdog 25 ms, migration ON (page_ms "
           "0.02,\n"
        << "# probation 8 steps x 1 seq). Doubles are C99 hex floats.\n"
        << "# Regenerate with DOTA_REGEN_GOLDEN=1 after intentional "
           "changes.\n";
    for (const auto &[key, value] : kv)
        out << key << " " << value << "\n";
}

void
expectMatchesGolden(const ServeReport &rep)
{
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    for (const auto &[key, value] : pinnedFields(rep)) {
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "field " << key;
        EXPECT_EQ(value, it->second) << "field " << key;
    }
}

TEST(Migration, SerialRunMatchesGoldenFile)
{
    test::ScopedThreads serial(1);
    const ServeReport rep = migrationRun(true);
    if (envFlag("DOTA_REGEN_GOLDEN")) {
        writeGolden(pinnedFields(rep));
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    expectMatchesGolden(rep);
}

TEST(Migration, ParallelRunMatchesGoldenExactly)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    test::ScopedThreads parallel(8);
    expectMatchesGolden(migrationRun(true));
}

} // namespace
} // namespace dota
