/**
 * @file
 * Tests for the dataflow analysis layer above the schedulers.
 */
#include <gtest/gtest.h>

#include "sched/dataflow.hpp"
#include "workloads/mask_synth.hpp"

namespace dota {
namespace {

TEST(Dataflow, Names)
{
    EXPECT_EQ(dataflowName(Dataflow::RowByRow), "row-by-row");
    EXPECT_EQ(dataflowName(Dataflow::TokenParallelOoO),
              "token-parallel (out-of-order)");
}

TEST(Dataflow, ValueTrafficMirrorsKeys)
{
    // Section 4.3: the computation order is reused for A*V.
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.value_loads, stats.key_loads);
}

TEST(Dataflow, IdealLoadsAreDistinctKeysPerGroup)
{
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.ideal_loads, 6u); // k1..k6 all used by the group
}

TEST(Dataflow, UtilizationOneForBalanced)
{
    Rng rng(171);
    MaskProfile p;
    p.retention = 0.125;
    const SparseMask m = synthesizeMask(64, p, rng);
    const auto stats = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
}

TEST(Dataflow, HigherParallelismReducesLoads)
{
    Rng rng(172);
    const MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask m = synthesizeMask(256, p, rng);
    uint64_t prev = m.nnz() + 1;
    for (size_t t : {1u, 2u, 4u, 8u}) {
        const auto stats =
            analyzeDataflow(m, Dataflow::TokenParallelOoO, t);
        EXPECT_LE(stats.key_loads, prev) << "t=" << t;
        prev = stats.key_loads;
    }
}

TEST(Dataflow, OoOBeatsInOrderOnStructuredMasks)
{
    Rng rng(173);
    const MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask m = synthesizeMask(512, p, rng);
    const auto ooo = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    const auto ino =
        analyzeDataflow(m, Dataflow::TokenParallelInOrder, 4);
    const auto rbr = analyzeDataflow(m, Dataflow::RowByRow);
    EXPECT_LT(ooo.key_loads, ino.key_loads);
    EXPECT_LT(ino.key_loads, rbr.key_loads);
}

TEST(Dataflow, RoundsMatchBalancedK)
{
    Rng rng(174);
    MaskProfile p;
    p.retention = 0.1;
    const SparseMask m = synthesizeMask(64, p, rng);
    const size_t k = m.row(0).size();
    const auto stats = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.rounds, k * (64 / 4));
}

} // namespace
} // namespace dota
