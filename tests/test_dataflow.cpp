/**
 * @file
 * Tests for the dataflow analysis layer above the schedulers.
 */
#include <gtest/gtest.h>

#include "sched/dataflow.hpp"
#include "workloads/mask_synth.hpp"

namespace dota {
namespace {

TEST(Dataflow, Names)
{
    EXPECT_EQ(dataflowName(Dataflow::RowByRow), "row-by-row");
    EXPECT_EQ(dataflowName(Dataflow::TokenParallelOoO),
              "token-parallel (out-of-order)");
}

TEST(Dataflow, ValueTrafficMirrorsKeys)
{
    // Section 4.3: the computation order is reused for A*V.
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.value_loads, stats.key_loads);
}

TEST(Dataflow, IdealLoadsAreDistinctKeysPerGroup)
{
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.ideal_loads, 6u); // k1..k6 all used by the group
}

TEST(Dataflow, UtilizationOneForBalanced)
{
    Rng rng(171);
    MaskProfile p;
    p.retention = 0.125;
    const SparseMask m = synthesizeMask(64, p, rng);
    const auto stats = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
}

TEST(Dataflow, HigherParallelismReducesLoads)
{
    Rng rng(172);
    const MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask m = synthesizeMask(256, p, rng);
    uint64_t prev = m.nnz() + 1;
    for (size_t t : {1u, 2u, 4u, 8u}) {
        const auto stats =
            analyzeDataflow(m, Dataflow::TokenParallelOoO, t);
        EXPECT_LE(stats.key_loads, prev) << "t=" << t;
        prev = stats.key_loads;
    }
}

TEST(Dataflow, OoOBeatsInOrderOnStructuredMasks)
{
    Rng rng(173);
    const MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask m = synthesizeMask(512, p, rng);
    const auto ooo = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    const auto ino =
        analyzeDataflow(m, Dataflow::TokenParallelInOrder, 4);
    const auto rbr = analyzeDataflow(m, Dataflow::RowByRow);
    EXPECT_LT(ooo.key_loads, ino.key_loads);
    EXPECT_LT(ino.key_loads, rbr.key_loads);
}

TEST(Dataflow, RoundsMatchBalancedK)
{
    Rng rng(174);
    MaskProfile p;
    p.retention = 0.1;
    const SparseMask m = synthesizeMask(64, p, rng);
    const size_t k = m.row(0).size();
    const auto stats = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.rounds, k * (64 / 4));
}

// ------------------------------------------------ streaming tiled

TEST(Dataflow, StreamingWorkedExampleFigure8)
{
    // Figure 8 mask, one group of 4 queries, tile = 2. Tiles [0,2),
    // [2,4), [4,5) keep {0,1}, {2}, {4}: 2+1+1 issue rounds, 5+3+2
    // connections, three contributing tiles, and per-group key loads
    // hit the distinct-key lower bound by construction.
    const auto s =
        analyzeDataflow(figure8Mask(), Dataflow::StreamingTiled, 4, 2);
    EXPECT_EQ(s.key_loads, 4u);
    EXPECT_EQ(s.value_loads, 4u);
    EXPECT_EQ(s.rounds, 4u);
    EXPECT_EQ(s.connections, 10u);
    EXPECT_EQ(s.ideal_loads, 4u);
    EXPECT_EQ(s.tile_flushes, 3u);
    // Weighted slot utilization: (5/8)*2 + (3/4)*1 + (2/4)*1 over 4.
    EXPECT_NEAR(s.utilization, 0.625, 1e-12);
}

TEST(Dataflow, StreamingSkipsEmptyTiles)
{
    // Keys live only in tiles 0 and 3 of a 4-tile row; the two middle
    // tiles must cost neither rounds nor flushes.
    SparseMask m(2, 16);
    m.setRow(0, {0, 1, 13});
    m.setRow(1, {1, 12, 13});
    const auto s = analyzeDataflow(m, Dataflow::StreamingTiled, 2, 4);
    EXPECT_EQ(s.tile_flushes, 2u);
    EXPECT_EQ(s.key_loads, 4u); // {0,1} + {12,13}, shared across rows
    EXPECT_EQ(s.connections, 6u);
    EXPECT_EQ(s.ideal_loads, 4u);
}

TEST(Dataflow, StreamingLoadsHitIdealBound)
{
    // Tiles partition the key axis, so each distinct key of a group
    // issues exactly once: key_loads == ideal_loads on any mask.
    Rng rng(175);
    MaskProfile p;
    p.retention = 0.1;
    const SparseMask m = synthesizeMask(128, p, rng);
    const auto s = analyzeDataflow(m, Dataflow::StreamingTiled, 4);
    EXPECT_EQ(s.key_loads, s.ideal_loads);
    EXPECT_EQ(s.value_loads, s.key_loads);
    EXPECT_GT(s.tile_flushes, 0u);
    EXPECT_GT(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
    // The OoO scheduler cannot beat the streaming bound on loads.
    const auto ooo = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
    EXPECT_GE(ooo.key_loads, s.key_loads);
}

TEST(Dataflow, StreamingNameAndDefaultFlushesZeroElsewhere)
{
    EXPECT_EQ(dataflowName(Dataflow::StreamingTiled),
              "streaming (tiled online-softmax)");
    const auto ooo =
        analyzeDataflow(figure8Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(ooo.tile_flushes, 0u);
}

} // namespace
} // namespace dota
