/**
 * @file
 * Calibration cross-checks promised in the module docs:
 *  - synthetic paper-scale masks vs masks harvested from trained tiny
 *    models (structural statistics agree within loose bands);
 *  - the hardware comparator threshold calibrated from probe forwards
 *    actually hits the requested retention.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/dota.hpp"

namespace dota {
namespace {

/** Train a small Text-like model and harvest its detected masks. */
std::vector<SparseMask>
trainedMasks(double retention, TransformerConfig &mc_out)
{
    TransformerConfig mc;
    mc.in_dim = 16;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.classes = 2;
    mc.seed = 71;
    mc_out = mc;

    TaskConfig tc;
    tc.seq_len = 64;
    tc.in_dim = 16;
    tc.classes = 2;
    tc.signal_count = 6;
    tc.locality = 0.5;
    SyntheticTask task(tc);

    TransformerClassifier model(mc);
    TrainConfig trc;
    trc.steps = 60;
    trc.batch = 6;
    ClassifierTrainer trainer(model, task, trc);
    trainer.train();

    OracleDetector oracle(retention); // true strong connections
    model.setHook(&oracle);
    Rng rng(72);
    model.forward(task.sample(rng).features);
    auto masks = harvestMasks(model);
    model.setHook(nullptr);
    return masks;
}

TEST(Calibration, SyntheticMaskStatsMatchHarvested)
{
    TransformerConfig mc;
    const auto harvested = trainedMasks(0.1, mc);
    ASSERT_FALSE(harvested.empty());

    // Pool harvested statistics.
    double h_local = 0.0, h_reuse = 0.0, h_density = 0.0;
    for (const SparseMask &m : harvested) {
        const MaskStats s = measureMask(m, /*window=*/8, /*group=*/4);
        h_local += s.local_fraction;
        h_reuse += s.group_reuse;
        h_density += s.density;
    }
    const double n_masks = static_cast<double>(harvested.size());
    h_local /= n_masks;
    h_reuse /= n_masks;
    h_density /= n_masks;

    // Synthetic mask at the same size/retention with the Text profile
    // (the tiny task is Text-flavoured).
    MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    p.window = 8; // scale the window to the short proxy sequence
    p.hub_count = 8;
    Rng rng(73);
    const SparseMask synth = synthesizeMask(64, p, rng);
    const MaskStats s = measureMask(synth, 8, 4);

    EXPECT_NEAR(s.density, h_density, 0.02);
    // Structural statistics agree within loose bands (factor ~3): the
    // synthetic generator is a model, not a clone.
    EXPECT_LT(std::abs(std::log(s.group_reuse / h_reuse)), std::log(3.0));
    EXPECT_GT(s.local_fraction, 0.0);
    EXPECT_GT(h_reuse, 1.0); // real masks do exhibit group reuse
}

TEST(Calibration, HarvestedMasksScheduleBetterThanRowByRow)
{
    TransformerConfig mc;
    const auto harvested = trainedMasks(0.15, mc);
    for (const SparseMask &m : harvested) {
        const auto ooo = analyzeDataflow(m, Dataflow::TokenParallelOoO, 4);
        const auto rbr = analyzeDataflow(m, Dataflow::RowByRow);
        EXPECT_LT(ooo.key_loads, rbr.key_loads);
    }
}

TEST(Calibration, ThresholdHitsRetention)
{
    TransformerConfig mc;
    mc.in_dim = 16;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.classes = 2;
    mc.seed = 74;
    TransformerClassifier model(mc);
    TaskConfig tc;
    tc.seq_len = 48;
    tc.in_dim = 16;
    tc.classes = 2;
    SyntheticTask task(tc);
    TrainConfig trc;
    trc.steps = 30;
    trc.batch = 4;
    ClassifierTrainer trainer(model, task, trc);
    trainer.train();

    DetectorConfig dc;
    dc.sigma = 0.5;
    DotaDetector det(mc, dc);
    warmupDetector(model, task, det, 30, 4, 5e-3);

    const float thr = calibrateThreshold(model, task, det, 0.15);
    EXPECT_TRUE(det.config().use_threshold);
    EXPECT_FLOAT_EQ(det.config().threshold, thr);

    // Measure the achieved density on fresh samples.
    det.config().apply_mask = true;
    det.config().train = false;
    model.setHook(&det);
    Rng rng(75);
    double density = 0.0;
    size_t measured = 0;
    for (int s = 0; s < 3; ++s) {
        model.forward(task.sample(rng).features);
        for (auto &blk : model.blocks())
            for (const Matrix &m : blk->attention().lastMasks())
                if (!m.empty()) {
                    density += maskDensity(m);
                    ++measured;
                }
    }
    model.setHook(nullptr);
    density /= static_cast<double>(measured);
    EXPECT_NEAR(density, 0.15, 0.08);
}

TEST(Calibration, ThresholdModeIsNotRowBalanced)
{
    // The comparator path trades the balance constraint away — exactly
    // the contrast the workload-balancing discussion of Section 4.3
    // draws.
    TransformerConfig mc;
    mc.in_dim = 16;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 64;
    mc.classes = 2;
    TransformerClassifier model(mc);
    TaskConfig tc;
    tc.seq_len = 48;
    tc.in_dim = 16;
    tc.classes = 2;
    SyntheticTask task(tc);

    DetectorConfig dc;
    dc.sigma = 0.5;
    DotaDetector det(mc, dc);
    calibrateThreshold(model, task, det, 0.2);

    det.config().apply_mask = true;
    det.config().train = false;
    model.setHook(&det);
    Rng rng(76);
    model.forward(task.sample(rng).features);
    const auto masks = harvestMasks(model);
    model.setHook(nullptr);
    bool any_unbalanced = false;
    for (const SparseMask &m : masks)
        any_unbalanced = any_unbalanced || !m.rowBalanced();
    EXPECT_TRUE(any_unbalanced);
}

} // namespace
} // namespace dota
