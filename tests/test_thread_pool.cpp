/**
 * @file
 * Tests for the bounded thread pool and parallelFor (common/thread_pool).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace dota {
namespace {

/** Spin (with sleeps) until @p done returns true or ~30s elapse. */
template <typename Pred>
bool
waitFor(Pred done)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!done()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

TEST(ThreadPool, ConstructionTeardownUnderContention)
{
    // Pools of several sizes created and destroyed while tasks are in
    // flight; destruction must join cleanly without losing tasks.
    for (size_t conc : {1u, 2u, 4u, 8u}) {
        for (int round = 0; round < 3; ++round) {
            std::atomic<int> ran{0};
            {
                ThreadPool pool(conc);
                for (int i = 0; i < 64; ++i)
                    pool.submit([&ran] {
                        ran.fetch_add(1, std::memory_order_relaxed);
                    });
            } // ~ThreadPool drains the queue
            EXPECT_EQ(ran.load(), 64) << "conc=" << conc;
        }
    }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    for (size_t n : {1u, 7u, 64u, 1000u}) {
        for (size_t grain : {1u, 3u, 17u, 1024u}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h.store(0);
            parallelFor(pool, 0, n, grain, [&](size_t lo, size_t hi) {
                ASSERT_LE(lo, hi);
                ASSERT_LE(hi, n);
                for (size_t i = lo; i < hi; ++i)
                    hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "n=" << n << " grain=" << grain << " i=" << i;
        }
    }
}

TEST(ThreadPool, ExceptionPropagatesOutOfParallelFor)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        parallelFor(pool, 0, 256, 1,
                    [](size_t lo, size_t) {
                        if (lo == 97)
                            throw std::runtime_error("chunk 97 failed");
                    }),
        std::runtime_error);

    // The pool must remain fully usable after a failed loop.
    std::atomic<size_t> sum{0};
    parallelFor(pool, 0, 100, 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ExceptionStopsRemainingChunks)
{
    ThreadPool pool(2);
    std::atomic<int> executed{0};
    try {
        parallelFor(pool, 0, 10000, 1, [&](size_t, size_t) {
            executed.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error("boom");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    // Chunks claimed after the failure flag was raised are skipped.
    EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    parallelFor(pool, 0, 32, 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            // Inner loop from whatever thread executes the outer chunk;
            // inside a worker this must degrade to inline execution.
            parallelFor(pool, 0, 10, 1, [&](size_t jlo, size_t jhi) {
                total.fetch_add(jhi - jlo, std::memory_order_relaxed);
            });
        }
    });
    EXPECT_EQ(total.load(), 320u);
}

TEST(ThreadPool, NestedSubmitWithFullQueueRunsInline)
{
    // Tiny queue so workers submitting tasks hit the capacity bound
    // immediately; the deadlock guard executes those tasks inline.
    ThreadPool pool(3, /*queue_capacity=*/2);
    std::atomic<int> ran{0};
    parallelFor(pool, 0, 8, 1, [&](size_t, size_t) {
        for (int i = 0; i < 50; ++i)
            pool.submit(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
    EXPECT_TRUE(waitFor([&] { return ran.load() == 8 * 50; }))
        << "only " << ran.load() << " of " << 8 * 50 << " tasks ran";
}

TEST(ThreadPool, StressTenThousandTinyTasks)
{
    ThreadPool pool(4, /*queue_capacity=*/128);
    std::atomic<uint64_t> sum{0};
    for (uint64_t i = 0; i < 10000; ++i)
        pool.submit(
            [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    EXPECT_TRUE(waitFor([&] { return sum.load() == 49995000ull; }))
        << "sum=" << sum.load();
}

TEST(ThreadPool, StressParallelForManyTinyChunks)
{
    ThreadPool pool(8);
    std::vector<uint8_t> touched(10000, 0);
    parallelFor(pool, 0, touched.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            touched[i] = 1; // disjoint writes: the determinism contract
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 10000);
}

TEST(ThreadPool, SerialPoolRunsEverythingInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    int ran = 0;
    pool.submit([&ran] { ran = 1; }); // inline: no workers exist
    EXPECT_EQ(ran, 1);
    size_t calls = 0;
    parallelFor(pool, 0, 100, 10, [&](size_t lo, size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
    });
    EXPECT_EQ(calls, 1u); // one inline call over the whole range
}

TEST(ThreadPool, ResizeRetargetsConcurrency)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.concurrency(), 2u);
    pool.resize(6);
    EXPECT_EQ(pool.concurrency(), 6u);
    std::atomic<size_t> sum{0};
    parallelFor(pool, 0, 1000, 1, [&](size_t lo, size_t hi) {
        sum.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000u);
    pool.resize(1);
    EXPECT_EQ(pool.concurrency(), 1u);
}

TEST(ThreadPool, WorkerSlotsAreDistinctAndBounded)
{
    ThreadPool pool(4);
    EXPECT_EQ(ThreadPool::slot(), 0); // non-pool thread
    std::vector<std::atomic<int>> seen(4);
    for (auto &s : seen)
        s.store(0);
    parallelFor(pool, 0, 256, 1, [&](size_t, size_t) {
        const int slot = ThreadPool::slot();
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 4);
        seen[static_cast<size_t>(slot)].store(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    EXPECT_EQ(seen[0].load(), 1); // the caller always participates
}

TEST(ThreadPool, ConfiguredThreadsIsPositive)
{
    EXPECT_GE(configuredThreads(), 1u);
    EXPECT_GE(ThreadPool::globalConcurrency(), 1u);
}

} // namespace
} // namespace dota
