/**
 * @file
 * Tests of the tiled streaming (online-softmax) attention kernel and
 * the pluggable backend layer (DESIGN.md §13): tolerance agreement
 * with the dense reference (the streaming recurrence reassociates the
 * softmax, so bit-identity to dense is NOT promised — these pins hold
 * the divergence at float-rounding scale), DOTA-mask composition,
 * tile-boundary and empty-row edge cases, the 1-vs-8-thread bit-
 * identity contract, the single-query decode variant, and the
 * resolveAttnBackend dispatch table.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "nn/attention.hpp"
#include "nn/attention_backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/streaming_attention.hpp"
#include "tensor/topk.hpp"
#include "common/thread_pool.hpp"

namespace dota {
namespace {

class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t n)
        : prev_(ThreadPool::globalConcurrency())
    {
        ThreadPool::setGlobalConcurrency(n);
    }
    ~ScopedThreads() { ThreadPool::setGlobalConcurrency(prev_); }

  private:
    size_t prev_;
};

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

/** Dense single-pass reference: softmax(scale * Q K^T [, mask]) V. */
Matrix
denseRef(const Matrix &q, const Matrix &k, const Matrix &v, float sc,
         const Matrix *mask = nullptr)
{
    const Matrix s = scale(matmulBT(q, k), sc);
    const Matrix a = mask ? rowSoftmaxMasked(s, *mask) : rowSoftmax(s);
    return matmul(a, v);
}

Matrix
causalOnes(size_t n)
{
    Matrix m(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c <= r; ++c)
            m(r, c) = 1.0f;
    return m;
}

float
attnScale(size_t d)
{
    return 1.0f / std::sqrt(static_cast<float>(d));
}

TEST(StreamingAttention, MatchesDenseUnmasked)
{
    Rng rng(901);
    const size_t n = 37, d = 16;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const float sc = attnScale(d);
    // tile = 8 forces several tiles and a ragged last one (37 % 8 != 0).
    const Matrix out =
        streamingAttention(q, k, v, nullptr, false, sc, 8);
    EXPECT_TRUE(Matrix::allClose(out, denseRef(q, k, v, sc), 1e-5f));
}

TEST(StreamingAttention, MatchesDenseCausal)
{
    Rng rng(902);
    const size_t n = 33, d = 8;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const float sc = attnScale(d);
    const Matrix out = streamingAttention(q, k, v, nullptr, true, sc, 8);
    const Matrix mask = causalOnes(n);
    EXPECT_TRUE(
        Matrix::allClose(out, denseRef(q, k, v, sc, &mask), 1e-5f));
}

TEST(StreamingAttention, ComposesWithDotaMask)
{
    Rng rng(903);
    const size_t n = 48, d = 16;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    const Matrix dense_mask = topkMask(proxy, 12);
    const SparseMask mask = SparseMask::fromDense(dense_mask);
    const float sc = attnScale(d);

    const Matrix out = streamingAttention(q, k, v, &mask, false, sc, 8);
    // Same kept coordinates as the CSR sparse-rows path.
    EXPECT_TRUE(Matrix::allClose(
        out, sparseMaskedAttention(q, k, v, mask, sc), 1e-5f));
}

TEST(StreamingAttention, EmptyMaskRowsStayZero)
{
    Rng rng(904);
    const size_t n = 10, d = 4;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    SparseMask mask(n, n);
    for (size_t r = 0; r < n; ++r)
        if (r % 3 != 0) // rows 0, 3, 6, 9 keep nothing
            mask.setRow(r, {0, static_cast<uint32_t>(r)});

    const Matrix out =
        streamingAttention(q, k, v, &mask, false, attnScale(d), 4);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < d; ++c) {
            if (r % 3 == 0)
                EXPECT_EQ(out(r, c), 0.0f) << "row " << r;
            else
                EXPECT_TRUE(std::isfinite(out(r, c)));
        }
}

TEST(StreamingAttention, FullMaskBitIdenticalToNoMask)
{
    Rng rng(905);
    const size_t n = 21, d = 8;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    SparseMask full(n, n);
    std::vector<uint32_t> all(n);
    for (size_t c = 0; c < n; ++c)
        all[c] = static_cast<uint32_t>(c);
    for (size_t r = 0; r < n; ++r)
        full.setRow(r, all);
    const float sc = attnScale(d);

    // 100% retention walks exactly the same tile/column sequence as the
    // unmasked path, so the fold is bit-identical, not just close.
    const Matrix masked = streamingAttention(q, k, v, &full, false, sc, 8);
    const Matrix plain = streamingAttention(q, k, v, nullptr, false, sc, 8);
    EXPECT_TRUE(bitIdentical(masked, plain));
}

TEST(StreamingAttention, TileBoundaryShapes)
{
    Rng rng(906);
    const size_t d = 8;
    const size_t tile = 4;
    for (size_t n : {size_t(1), size_t(3), tile, tile + 1, 2 * tile,
                     2 * tile + 3}) {
        const Matrix q = Matrix::randomNormal(n, d, rng);
        const Matrix k = Matrix::randomNormal(n, d, rng);
        const Matrix v = Matrix::randomNormal(n, d, rng);
        const float sc = attnScale(d);
        for (bool causal : {false, true}) {
            const Matrix out =
                streamingAttention(q, k, v, nullptr, causal, sc, tile);
            const Matrix cm = causalOnes(n);
            const Matrix ref =
                denseRef(q, k, v, sc, causal ? &cm : nullptr);
            EXPECT_TRUE(Matrix::allClose(out, ref, 1e-5f))
                << "n=" << n << " causal=" << causal;
        }
    }
}

TEST(StreamingAttention, BitIdenticalAcrossThreadCounts)
{
    Rng rng(907);
    // Big enough to clear the parallel-crossover MAC threshold.
    const size_t n = 256, d = 32;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    const SparseMask mask = SparseMask::fromDense(topkMask(proxy, 48));
    const float sc = attnScale(d);

    Matrix serial_plain, serial_masked;
    {
        ScopedThreads serial(1);
        serial_plain = streamingAttention(q, k, v, nullptr, true, sc);
        serial_masked = streamingAttention(q, k, v, &mask, false, sc);
    }
    ScopedThreads parallel(8);
    const Matrix par_plain = streamingAttention(q, k, v, nullptr, true, sc);
    const Matrix par_masked = streamingAttention(q, k, v, &mask, false, sc);
    EXPECT_TRUE(bitIdentical(serial_plain, par_plain));
    EXPECT_TRUE(bitIdentical(serial_masked, par_masked));
}

TEST(StreamingAttention, QueryVariantMatchesDenseRow)
{
    Rng rng(908);
    const size_t t = 100, dh = 16;
    const Matrix q = Matrix::randomNormal(1, dh, rng);
    const Matrix k = Matrix::randomNormal(t, dh, rng);
    const Matrix v = Matrix::randomNormal(t, dh, rng);
    const float sc = attnScale(dh);

    Matrix out(1, dh);
    std::vector<float> probs;
    streamingAttentionQuery(q.row(0), k, v, 0, dh, sc, out.row(0),
                            &probs, 16);
    EXPECT_TRUE(Matrix::allClose(out, denseRef(q, k, v, sc), 1e-5f));

    // Probabilities: full softmax row, sums to ~1.
    const Matrix a = rowSoftmax(scale(matmulBT(q, k), sc));
    ASSERT_EQ(probs.size(), t);
    double sum = 0.0;
    for (size_t j = 0; j < t; ++j) {
        EXPECT_NEAR(probs[j], a(0, j), 1e-6) << "key " << j;
        sum += probs[j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(StreamingAttention, QueryVariantHandlesHeadSlices)
{
    // KV rows are 2 * dh wide; the second head lives at offset dh.
    Rng rng(909);
    const size_t t = 23, dh = 8;
    const Matrix qfull = Matrix::randomNormal(1, 2 * dh, rng);
    const Matrix kfull = Matrix::randomNormal(t, 2 * dh, rng);
    const Matrix vfull = Matrix::randomNormal(t, 2 * dh, rng);
    const float sc = attnScale(dh);

    Matrix qh(1, dh), kh(t, dh), vh(t, dh);
    for (size_t j = 0; j < dh; ++j)
        qh(0, j) = qfull(0, dh + j);
    for (size_t i = 0; i < t; ++i)
        for (size_t j = 0; j < dh; ++j) {
            kh(i, j) = kfull(i, dh + j);
            vh(i, j) = vfull(i, dh + j);
        }

    Matrix out(1, 2 * dh);
    streamingAttentionQuery(qfull.row(0) + dh, kfull, vfull, dh, dh, sc,
                            out.row(0) + dh, nullptr, 5);
    Matrix sliced(1, dh);
    for (size_t j = 0; j < dh; ++j)
        sliced(0, j) = out(0, dh + j);
    EXPECT_TRUE(
        Matrix::allClose(sliced, denseRef(qh, kh, vh, sc), 1e-5f));
}

TEST(StreamingAttention, ScratchIsTileBoundNotSequenceBound)
{
    // The whole point of the backend: per-thread scratch depends on the
    // tile width and head dim only, never on the sequence length.
    const size_t d = 64, tile = kStreamingAttnTile, threads = 8;
    const size_t bytes = streamingAttnScratchBytes(d, tile, threads);
    EXPECT_EQ(bytes, threads * (tile * 8 + 2 * d * 4));
    EXPECT_LT(bytes, 1u << 20);
}

// ------------------------------------------------------- backend layer

TEST(AttnBackend, ParseAndNames)
{
    AttnChoice c = AttnChoice::Dense;
    EXPECT_TRUE(parseAttnChoice("auto", c));
    EXPECT_EQ(c, AttnChoice::Auto);
    EXPECT_TRUE(parseAttnChoice("streaming", c));
    EXPECT_EQ(c, AttnChoice::Streaming);
    EXPECT_TRUE(parseAttnChoice("dense", c));
    EXPECT_TRUE(parseAttnChoice("sparse", c));
    EXPECT_FALSE(parseAttnChoice("flash", c));
    EXPECT_FALSE(parseAttnChoice("", c));

    EXPECT_EQ(attnBackendName(AttnBackendKind::Dense),
              std::string("dense"));
    EXPECT_EQ(attnBackendName(AttnBackendKind::Sparse),
              std::string("sparse"));
    EXPECT_EQ(attnBackendName(AttnBackendKind::Streaming),
              std::string("streaming"));
    for (AttnBackendKind kind :
         {AttnBackendKind::Dense, AttnBackendKind::Sparse,
          AttnBackendKind::Streaming}) {
        EXPECT_EQ(attentionBackend(kind).kind(), kind);
        EXPECT_EQ(attentionBackend(kind).name(), attnBackendName(kind));
    }
}

TEST(AttnBackend, ScopedChoiceRestores)
{
    const AttnChoice before = attnChoice();
    {
        ScopedAttnChoice pin(AttnChoice::Streaming);
        EXPECT_EQ(attnChoice(), AttnChoice::Streaming);
        {
            ScopedAttnChoice inner(AttnChoice::Dense);
            EXPECT_EQ(attnChoice(), AttnChoice::Dense);
        }
        EXPECT_EQ(attnChoice(), AttnChoice::Streaming);
    }
    EXPECT_EQ(attnChoice(), before);
}

TEST(AttnBackend, ResolutionTable)
{
    using K = AttnBackendKind;
    using C = AttnChoice;
    const size_t small_n = 64, big_n = kStreamingAutoSeqLen;

    // Probe-style hooks (wantsFullScores) and forceDense always win.
    EXPECT_EQ(resolveAttnBackend(C::Streaming, true, true, false, true,
                                 big_n),
              K::Dense);
    EXPECT_EQ(resolveAttnBackend(C::Streaming, false, false, true, false,
                                 big_n),
              K::Dense);

    // Auto: hook mask -> sparse; long context -> streaming; else dense.
    EXPECT_EQ(resolveAttnBackend(C::Auto, true, false, false, true,
                                 small_n),
              K::Sparse);
    EXPECT_EQ(resolveAttnBackend(C::Auto, false, false, false, false,
                                 small_n),
              K::Dense);
    EXPECT_EQ(resolveAttnBackend(C::Auto, false, false, false, false,
                                 big_n),
              K::Streaming);
    EXPECT_EQ(resolveAttnBackend(C::Auto, true, false, false, true,
                                 big_n),
              K::Streaming);

    // Explicit dense always honored.
    EXPECT_EQ(resolveAttnBackend(C::Dense, true, false, false, true,
                                 big_n),
              K::Dense);
    // Explicit sparse needs a hook mask to be meaningful.
    EXPECT_EQ(resolveAttnBackend(C::Sparse, true, false, false, true,
                                 small_n),
              K::Sparse);
    EXPECT_EQ(resolveAttnBackend(C::Sparse, false, false, false, false,
                                 small_n),
              K::Dense);
    // Explicit streaming: honored for hooked or long-context forwards;
    // short hookless forwards (training, gradcheck) stay dense.
    EXPECT_EQ(resolveAttnBackend(C::Streaming, true, false, false, false,
                                 small_n),
              K::Streaming);
    EXPECT_EQ(resolveAttnBackend(C::Streaming, false, false, false, false,
                                 big_n),
              K::Streaming);
    EXPECT_EQ(resolveAttnBackend(C::Streaming, false, false, false, false,
                                 small_n),
              K::Dense);
}

/** Inference-only hook serving a fixed mask (non-dense paths legal). */
class MaskOnlyHook : public AttentionHook
{
  public:
    explicit MaskOnlyHook(Matrix mask) : mask_(std::move(mask)) {}
    void beginLayer(size_t, const Matrix &) override {}
    Matrix selectMask(size_t, size_t, bool) override { return mask_; }
    void observeScores(size_t, size_t, const Matrix &) override {}
    Matrix scoreGradient(size_t, size_t) override { return {}; }
    bool wantsFullScores() const override { return false; }

  private:
    Matrix mask_;
};

TEST(AttnBackend, StreamingThroughMultiHeadAttention)
{
    Rng rng(910);
    const size_t n = 40, dim = 32, heads = 4;
    MultiHeadAttention attn("t", 0, dim, heads, rng);
    const Matrix x = Matrix::randomNormal(n, dim, rng);
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    MaskOnlyHook hook(topkMask(proxy, 10));
    attn.setHook(&hook);

    attn.setForceDense(true);
    const Matrix dense = attn.forward(x);
    attn.setForceDense(false);

    ScopedAttnChoice pin(AttnChoice::Streaming);
    const Matrix streamed = attn.forward(x);
    EXPECT_TRUE(attn.lastForwardSparse());
    ASSERT_EQ(attn.lastBackends().size(), heads);
    for (AttnBackendKind kind : attn.lastBackends())
        EXPECT_EQ(kind, AttnBackendKind::Streaming);
    // Same masked attention, tolerance-level numerics.
    EXPECT_TRUE(Matrix::allClose(streamed, dense, 1e-4f));
    EXPECT_FALSE(bitIdentical(streamed, dense));
}

} // namespace
} // namespace dota
