/**
 * @file
 * Tests for the scale-out fleet simulator (Section 4.1).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "device/fleet.hpp"

namespace dota {
namespace {

FleetSimulator
makeFleet(size_t accelerators, DotaMode mode = DotaMode::Conservative)
{
    FleetConfig fc;
    fc.accelerators = accelerators;
    SimOptions opt;
    opt.mode = mode;
    return FleetSimulator(fc, benchmark(BenchmarkId::Text), opt);
}

TEST(Fleet, SingleAcceleratorSerializes)
{
    FleetSimulator fleet = makeFleet(1);
    const std::vector<size_t> lens{512, 1024, 768};
    const FleetReport r = fleet.run(lens);
    double sum = 0.0;
    for (size_t n : lens)
        sum += fleet.sequenceLatencyMs(n);
    EXPECT_NEAR(r.makespan_ms, sum, 1e-9);
    EXPECT_NEAR(r.utilization, 1.0, 1e-9);
    EXPECT_EQ(r.accel_busy_ms.size(), 1u);
}

TEST(Fleet, LatencyCacheConsistent)
{
    FleetSimulator fleet = makeFleet(2);
    const double a = fleet.sequenceLatencyMs(1024);
    const double b = fleet.sequenceLatencyMs(1024);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(fleet.sequenceLatencyMs(2048), a); // longer is slower
}

TEST(Fleet, MoreAcceleratorsNeverSlower)
{
    std::vector<size_t> lens;
    Rng rng(5);
    for (int i = 0; i < 12; ++i)
        lens.push_back(256 + 128 * rng.uniformInt(8));
    double prev = 1e300;
    for (size_t n : {1u, 2u, 4u}) {
        const FleetReport r = makeFleet(n).run(lens);
        EXPECT_LE(r.makespan_ms, prev + 1e-9) << n;
        prev = r.makespan_ms;
    }
}

TEST(Fleet, IdenticalJobsScaleNearLinearly)
{
    const std::vector<size_t> lens(8, 1024);
    const FleetReport one = makeFleet(1).run(lens);
    const FleetReport four = makeFleet(4).run(lens);
    EXPECT_NEAR(one.makespan_ms / four.makespan_ms, 4.0, 1e-6);
    EXPECT_NEAR(four.utilization, 1.0, 1e-9);
}

TEST(Fleet, UtilizationBounds)
{
    std::vector<size_t> lens{4096, 256, 256};
    const FleetReport r = makeFleet(2).run(lens);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-12);
    // One giant job dominates: the second accelerator mostly idles.
    EXPECT_LT(r.utilization, 0.9);
}

TEST(Fleet, DetectionImprovesThroughput)
{
    const std::vector<size_t> lens(6, 2048);
    const FleetReport dense = makeFleet(2, DotaMode::Full).run(lens);
    const FleetReport sparse =
        makeFleet(2, DotaMode::Conservative).run(lens);
    EXPECT_GT(sparse.throughput_seq_s, dense.throughput_seq_s);
}

TEST(Fleet, EmptyBatch)
{
    const FleetReport r = makeFleet(3).run({});
    EXPECT_DOUBLE_EQ(r.makespan_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.throughput_seq_s, 0.0);
}

/** Device whose every simulation costs exactly nothing. */
class ZeroCostDevice : public Device
{
  public:
    RunReport
    simulate(const Benchmark &bench) const override
    {
        RunReport r;
        r.device = name();
        r.benchmark = bench.name;
        return r; // zero cycles, zero layers, zero energy
    }
    std::string name() const override { return "ZERO"; }
    double peakTopS() const override { return 1.0; }
    std::unique_ptr<Device>
    clone() const override
    {
        return std::make_unique<ZeroCostDevice>();
    }
};

TEST(Fleet, ZeroMakespanReportsZeroNotInf)
{
    // A batch whose every job has zero service time used to divide by
    // makespan == 0 and report inf/NaN utilization, throughput, and
    // energy/seq.
    std::vector<std::unique_ptr<Device>> devices;
    devices.push_back(std::make_unique<ZeroCostDevice>());
    devices.push_back(std::make_unique<ZeroCostDevice>());
    FleetSimulator fleet(std::move(devices),
                         benchmark(BenchmarkId::Text));
    const FleetReport r = fleet.run({512, 1024, 2048});
    EXPECT_DOUBLE_EQ(r.makespan_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
    EXPECT_DOUBLE_EQ(r.throughput_seq_s, 0.0);
    EXPECT_DOUBLE_EQ(r.energy_per_seq_j, 0.0);
    EXPECT_TRUE(std::isfinite(r.utilization));
    EXPECT_TRUE(std::isfinite(r.throughput_seq_s));
    EXPECT_TRUE(std::isfinite(r.energy_per_seq_j));
    EXPECT_EQ(r.latency.count(), 3u);
}

TEST(Fleet, ReportInternallyConsistent)
{
    std::vector<size_t> lens{512, 1024, 1536, 2048, 512};
    const FleetReport r = makeFleet(2).run(lens);
    double busy = 0.0;
    for (double b : r.accel_busy_ms) {
        busy += b;
        EXPECT_LE(b, r.makespan_ms + 1e-9);
    }
    EXPECT_NEAR(busy, r.total_work_ms, 1e-9);
    EXPECT_GE(r.max_latency_ms, r.mean_latency_ms);
    // The latency distribution mirrors the scalar summaries.
    EXPECT_EQ(r.latency.count(), lens.size());
    EXPECT_DOUBLE_EQ(r.latency.max(), r.max_latency_ms);
    EXPECT_NEAR(r.latency.mean(), r.mean_latency_ms, 1e-9);
}

TEST(Fleet, EnergyConservation)
{
    // The dispatched batch's energy is the sum of the per-job device
    // energies, independent of how jobs were placed.
    const std::vector<size_t> lens{512, 1024, 1536, 512, 2048};
    FleetSimulator fleet = makeFleet(3);
    const FleetReport r = fleet.run(lens);
    double expect = 0.0;
    for (size_t n : lens)
        expect += fleet.sequenceEnergyJ(n);
    EXPECT_NEAR(r.total_energy_j, expect, 1e-12 * expect);
    EXPECT_DOUBLE_EQ(r.energy_per_seq_j,
                     r.total_energy_j / double(lens.size()));
    EXPECT_GT(r.total_energy_j, 0.0);
}

FleetConfig
mixedConfig()
{
    FleetConfig fc;
    fc.devices = {DeviceSpec{"dota-c", 2, 1.0, DeviceOptions{}},
                  DeviceSpec{"elsa", 1, 1.0, DeviceOptions{}},
                  DeviceSpec{"gpu-v100", 1, 1.0, DeviceOptions{}}};
    return fc;
}

TEST(Fleet, HeterogeneousMixConservesWork)
{
    FleetSimulator fleet(mixedConfig(), benchmark(BenchmarkId::Text));
    ASSERT_EQ(fleet.size(), 4u);
    std::vector<size_t> lens;
    Rng rng(7);
    for (int i = 0; i < 14; ++i)
        lens.push_back(256 + 128 * rng.uniformInt(10));
    const FleetReport r = fleet.run(lens);

    ASSERT_EQ(r.accel_busy_ms.size(), 4u);
    ASSERT_EQ(r.accel_device.size(), 4u);
    EXPECT_EQ(r.accel_device[0], "DOTA-C");
    EXPECT_EQ(r.accel_device[1], "DOTA-C");
    EXPECT_EQ(r.accel_device[2], "ELSA");
    EXPECT_EQ(r.accel_device[3], "GPU-V100");

    double busy_sum = 0.0, busy_max = 0.0;
    for (double b : r.accel_busy_ms) {
        EXPECT_GE(b, 0.0);
        busy_sum += b;
        busy_max = std::max(busy_max, b);
    }
    EXPECT_NEAR(busy_sum, r.total_work_ms,
                1e-9 * (1.0 + r.total_work_ms));
    EXPECT_DOUBLE_EQ(r.makespan_ms, busy_max);
    EXPECT_EQ(r.latency.count(), lens.size());
    EXPECT_GT(r.total_energy_j, 0.0);
    // Per-job energy is bracketed by the cheapest/dearest device.
    double lo = 0.0, hi = 0.0;
    for (size_t n : lens) {
        double mn = 1e300, mx = 0.0;
        for (size_t a = 0; a < fleet.size(); ++a) {
            const double e = fleet.sequenceEnergyJ(n, a);
            mn = std::min(mn, e);
            mx = std::max(mx, e);
        }
        lo += mn;
        hi += mx;
    }
    EXPECT_GE(r.total_energy_j, lo * (1.0 - 1e-12));
    EXPECT_LE(r.total_energy_j, hi * (1.0 + 1e-12));
}

TEST(Fleet, SpeedAwareDispatchFavorsFastBin)
{
    // Two identical DOTA-C devices, one clocked 2x: it should finish
    // jobs in half the time and absorb about twice the work share.
    FleetConfig fc;
    fc.devices = {DeviceSpec{"dota-c", 1, 1.0, DeviceOptions{}},
                  DeviceSpec{"dota-c", 1, 2.0, DeviceOptions{}}};
    FleetSimulator fleet(fc, benchmark(BenchmarkId::Text));
    EXPECT_DOUBLE_EQ(fleet.sequenceLatencyMs(1024, 1),
                     fleet.sequenceLatencyMs(1024, 0) / 2.0);

    const std::vector<size_t> lens(12, 1024);
    const FleetReport r = fleet.run(lens);
    // The 2x bin completes jobs at twice the rate, so it should absorb
    // about twice as many of the identical jobs (8 vs 4, give or take a
    // tie-break).
    EXPECT_GT(r.accel_busy_ms[0], 0.0);
    const double slow_jobs =
        r.accel_busy_ms[0] / fleet.sequenceLatencyMs(1024, 0);
    const double fast_jobs =
        r.accel_busy_ms[1] / fleet.sequenceLatencyMs(1024, 1);
    EXPECT_NEAR(slow_jobs + fast_jobs, 12.0, 1e-6);
    EXPECT_GE(fast_jobs, slow_jobs + 2.0);
    // Energy is per-job work, not wall time: identical on both bins.
    EXPECT_DOUBLE_EQ(fleet.sequenceEnergyJ(1024, 0),
                     fleet.sequenceEnergyJ(1024, 1));
}

TEST(Fleet, DirectDeviceInjection)
{
    // Fleets can be built from pre-configured Device instances.
    std::vector<std::unique_ptr<Device>> devices;
    devices.push_back(DeviceRegistry::create("dota-c"));
    devices.push_back(DeviceRegistry::create("dota-a"));
    FleetSimulator fleet(std::move(devices),
                         benchmark(BenchmarkId::Text));
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet.device(0).name(), "DOTA-C");
    EXPECT_EQ(fleet.device(1).name(), "DOTA-A");
    const FleetReport r = fleet.run({1024, 1024, 2048});
    EXPECT_GT(r.makespan_ms, 0.0);
    EXPECT_EQ(r.latency.count(), 3u);
    // DOTA-A keeps less attention, so it serves a sequence faster.
    EXPECT_LT(fleet.sequenceLatencyMs(2048, 1),
              fleet.sequenceLatencyMs(2048, 0));
}

TEST(Fleet, ConservationInvariantsAcrossScenarios)
{
    // Work conservation must hold for every fleet size, mode and batch:
    // per-accelerator busy time sums to the total dispatched work, the
    // makespan is the max busy time, and utilization never exceeds 1.
    Rng rng(17);
    for (size_t accels : {1u, 2u, 3u, 5u}) {
        for (DotaMode mode : {DotaMode::Full, DotaMode::Conservative}) {
            std::vector<size_t> lens;
            const int jobs = 1 + static_cast<int>(rng.uniformInt(14));
            for (int i = 0; i < jobs; ++i)
                lens.push_back(128 + 128 * rng.uniformInt(16));
            const FleetReport r = makeFleet(accels, mode).run(lens);
            ASSERT_EQ(r.accel_busy_ms.size(), accels);
            double busy_sum = 0.0;
            double busy_max = 0.0;
            for (double b : r.accel_busy_ms) {
                EXPECT_GE(b, 0.0);
                busy_sum += b;
                busy_max = std::max(busy_max, b);
            }
            EXPECT_NEAR(busy_sum, r.total_work_ms,
                        1e-9 * (1.0 + r.total_work_ms))
                << accels << " accels, " << jobs << " jobs";
            EXPECT_DOUBLE_EQ(r.makespan_ms, busy_max);
            EXPECT_GT(r.utilization, 0.0);
            EXPECT_LE(r.utilization, 1.0 + 1e-12);
        }
    }
}

} // namespace
} // namespace dota
