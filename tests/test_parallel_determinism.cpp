/**
 * @file
 * Property tests for the parallel-execution determinism contract: GEMMs,
 * trainer gradient steps and fleet dispatch must be bit-identical at
 * DOTA_THREADS=1 and DOTA_THREADS=8 (DESIGN.md, "Parallel execution").
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "device/fleet.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparse_mask.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/topk.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

/** Pin the global pool to @p n threads for one scope. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t n)
        : prev_(ThreadPool::globalConcurrency())
    {
        ThreadPool::setGlobalConcurrency(n);
    }
    ~ScopedThreads() { ThreadPool::setGlobalConcurrency(prev_); }

  private:
    size_t prev_;
};

/** Bitwise equality of two matrices (exact, not allClose). */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) ==
                0);
}

/** Run @p fn at 1 thread and at 8 threads; return both results. */
template <typename Fn>
auto
atBothThreadCounts(Fn fn)
{
    ScopedThreads serial(1);
    auto a = fn();
    ScopedThreads parallel(8);
    auto b = fn();
    return std::make_pair(std::move(a), std::move(b));
}

TEST(ParallelDeterminism, MatmulBitIdenticalAcrossRandomShapes)
{
    Rng shape_rng(2024);
    for (int trial = 0; trial < 12; ++trial) {
        // Mix shapes below and well above the parallel threshold.
        const size_t m = 1 + shape_rng.uniformInt(160);
        const size_t k = 1 + shape_rng.uniformInt(160);
        const size_t n = 1 + shape_rng.uniformInt(160);
        Rng data_rng(100 + static_cast<uint64_t>(trial));
        const Matrix a = Matrix::randomNormal(m, k, data_rng);
        const Matrix b = Matrix::randomNormal(k, n, data_rng);
        auto [serial, parallel] =
            atBothThreadCounts([&] { return matmul(a, b); });
        EXPECT_TRUE(bitIdentical(serial, parallel))
            << "matmul " << m << "x" << k << "x" << n;
    }
    // One shape guaranteed deep inside the parallel regime.
    Rng data_rng(7);
    const Matrix a = Matrix::randomNormal(192, 96, data_rng);
    const Matrix b = Matrix::randomNormal(96, 192, data_rng);
    auto [serial, parallel] =
        atBothThreadCounts([&] { return matmul(a, b); });
    EXPECT_TRUE(bitIdentical(serial, parallel));
}

TEST(ParallelDeterminism, MatmulBTBitIdentical)
{
    Rng shape_rng(2025);
    for (int trial = 0; trial < 12; ++trial) {
        const size_t m = 1 + shape_rng.uniformInt(200);
        const size_t k = 1 + shape_rng.uniformInt(120);
        const size_t n = 1 + shape_rng.uniformInt(200);
        Rng data_rng(300 + static_cast<uint64_t>(trial));
        const Matrix a = Matrix::randomNormal(m, k, data_rng);
        const Matrix b = Matrix::randomNormal(n, k, data_rng);
        auto [serial, parallel] =
            atBothThreadCounts([&] { return matmulBT(a, b); });
        EXPECT_TRUE(bitIdentical(serial, parallel))
            << "matmulBT " << m << "x" << k << "x" << n;
    }
}

TEST(ParallelDeterminism, MatmulATBitIdentical)
{
    Rng shape_rng(2026);
    for (int trial = 0; trial < 12; ++trial) {
        const size_t m = 1 + shape_rng.uniformInt(200);
        const size_t k = 1 + shape_rng.uniformInt(120);
        const size_t n = 1 + shape_rng.uniformInt(200);
        Rng data_rng(500 + static_cast<uint64_t>(trial));
        const Matrix a = Matrix::randomNormal(k, m, data_rng);
        const Matrix b = Matrix::randomNormal(k, n, data_rng);
        auto [serial, parallel] =
            atBothThreadCounts([&] { return matmulAT(a, b); });
        EXPECT_TRUE(bitIdentical(serial, parallel))
            << "matmulAT " << m << "x" << k << "x" << n;
    }
}

/** Train a fresh classifier and return (per-step losses, final params). */
std::pair<std::vector<double>, std::vector<Matrix>>
trainClassifier(uint64_t seed)
{
    TaskConfig tc;
    tc.seq_len = 32;
    tc.in_dim = 8;
    tc.classes = 3;
    tc.seed = seed;
    SyntheticTask task(tc);
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 32;
    mc.classes = 3;
    mc.seed = seed + 1;
    TransformerClassifier model(mc);
    TrainConfig cfg;
    cfg.steps = 4;
    cfg.batch = 6;
    cfg.data_seed = seed + 2;
    ClassifierTrainer trainer(model, task, cfg);
    trainer.train();
    std::vector<Parameter *> params;
    model.collectParams(params);
    std::vector<Matrix> values;
    values.reserve(params.size());
    for (Parameter *p : params)
        values.push_back(p->value);
    return {trainer.lossHistory(), std::move(values)};
}

TEST(ParallelDeterminism, ClassifierTrainerBitIdenticalAcrossSeeds)
{
    for (uint64_t seed : {11u, 42u, 99u}) {
        auto [serial, parallel] =
            atBothThreadCounts([&] { return trainClassifier(seed); });
        ASSERT_EQ(serial.first.size(), parallel.first.size());
        for (size_t s = 0; s < serial.first.size(); ++s)
            EXPECT_EQ(serial.first[s], parallel.first[s])
                << "seed " << seed << " step " << s;
        ASSERT_EQ(serial.second.size(), parallel.second.size());
        for (size_t i = 0; i < serial.second.size(); ++i)
            EXPECT_TRUE(
                bitIdentical(serial.second[i], parallel.second[i]))
                << "seed " << seed << " param " << i;
    }
}

/** Train a fresh causal LM and return (per-step losses, final params). */
std::pair<std::vector<double>, std::vector<Matrix>>
trainLM(uint64_t seed)
{
    GrammarConfig gc;
    gc.seq_len = 24;
    gc.vocab = 32;
    gc.seed = seed;
    SyntheticGrammar grammar(gc);
    TransformerConfig mc;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 32;
    mc.vocab = 32;
    mc.max_seq = 64;
    mc.seed = seed + 1;
    CausalLM model(mc);
    TrainConfig cfg;
    cfg.steps = 3;
    cfg.batch = 5;
    cfg.data_seed = seed + 2;
    LMTrainer trainer(model, grammar, cfg);
    trainer.train();
    std::vector<Parameter *> params;
    model.collectParams(params);
    std::vector<Matrix> values;
    values.reserve(params.size());
    for (Parameter *p : params)
        values.push_back(p->value);
    return {trainer.lossHistory(), std::move(values)};
}

TEST(ParallelDeterminism, LMTrainerBitIdentical)
{
    auto [serial, parallel] =
        atBothThreadCounts([] { return trainLM(77); });
    ASSERT_EQ(serial.first.size(), parallel.first.size());
    for (size_t s = 0; s < serial.first.size(); ++s)
        EXPECT_EQ(serial.first[s], parallel.first[s]) << "step " << s;
    ASSERT_EQ(serial.second.size(), parallel.second.size());
    for (size_t i = 0; i < serial.second.size(); ++i)
        EXPECT_TRUE(bitIdentical(serial.second[i], parallel.second[i]))
            << "param " << i;
}

TEST(ParallelDeterminism, FleetDispatchBitIdentical)
{
    Rng len_rng(31337);
    for (int trial = 0; trial < 3; ++trial) {
        std::vector<size_t> lens;
        for (int i = 0; i < 10; ++i)
            lens.push_back(128 + 64 * len_rng.uniformInt(12));
        auto runFleet = [&] {
            FleetConfig fc;
            fc.accelerators = 3;
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            FleetSimulator fleet(fc, benchmark(BenchmarkId::Text), opt);
            return fleet.run(lens);
        };
        auto [serial, parallel] = atBothThreadCounts(runFleet);
        EXPECT_EQ(serial.makespan_ms, parallel.makespan_ms);
        EXPECT_EQ(serial.total_work_ms, parallel.total_work_ms);
        EXPECT_EQ(serial.mean_latency_ms, parallel.mean_latency_ms);
        EXPECT_EQ(serial.max_latency_ms, parallel.max_latency_ms);
        EXPECT_EQ(serial.utilization, parallel.utilization);
        EXPECT_EQ(serial.throughput_seq_s, parallel.throughput_seq_s);
        EXPECT_EQ(serial.total_energy_j, parallel.total_energy_j);
        EXPECT_EQ(serial.energy_per_seq_j, parallel.energy_per_seq_j);
        ASSERT_EQ(serial.accel_busy_ms.size(),
                  parallel.accel_busy_ms.size());
        for (size_t a = 0; a < serial.accel_busy_ms.size(); ++a)
            EXPECT_EQ(serial.accel_busy_ms[a], parallel.accel_busy_ms[a]);
        EXPECT_EQ(serial.latency.count(), parallel.latency.count());
        EXPECT_EQ(serial.latency.mean(), parallel.latency.mean());
        EXPECT_EQ(serial.latency.max(), parallel.latency.max());
    }
}

TEST(ParallelDeterminism, MixedFleetDispatchBitIdentical)
{
    // The heterogeneous dispatcher (different device kinds and speed
    // bins) keeps the PR 1 contract: bit-identical reports at every
    // thread count.
    Rng len_rng(4242);
    std::vector<size_t> lens;
    for (int i = 0; i < 12; ++i)
        lens.push_back(128 + 64 * len_rng.uniformInt(12));
    auto runFleet = [&] {
        FleetConfig fc;
        fc.devices = {
            DeviceSpec{"dota-c", 2, 1.0, DeviceOptions{}},
            DeviceSpec{"dota-c", 1, 1.5, DeviceOptions{}},
            DeviceSpec{"elsa", 1, 1.0, DeviceOptions{}},
            DeviceSpec{"gpu-v100", 1, 1.0, DeviceOptions{}},
        };
        FleetSimulator fleet(fc, benchmark(BenchmarkId::Text));
        return fleet.run(lens);
    };
    auto [serial, parallel] = atBothThreadCounts(runFleet);
    EXPECT_EQ(serial.makespan_ms, parallel.makespan_ms);
    EXPECT_EQ(serial.total_work_ms, parallel.total_work_ms);
    EXPECT_EQ(serial.mean_latency_ms, parallel.mean_latency_ms);
    EXPECT_EQ(serial.max_latency_ms, parallel.max_latency_ms);
    EXPECT_EQ(serial.total_energy_j, parallel.total_energy_j);
    EXPECT_EQ(serial.energy_per_seq_j, parallel.energy_per_seq_j);
    ASSERT_EQ(serial.accel_busy_ms.size(),
              parallel.accel_busy_ms.size());
    for (size_t a = 0; a < serial.accel_busy_ms.size(); ++a)
        EXPECT_EQ(serial.accel_busy_ms[a], parallel.accel_busy_ms[a]);
    ASSERT_EQ(serial.accel_device.size(), parallel.accel_device.size());
    for (size_t a = 0; a < serial.accel_device.size(); ++a)
        EXPECT_EQ(serial.accel_device[a], parallel.accel_device[a]);
    EXPECT_EQ(serial.latency.count(), parallel.latency.count());
    EXPECT_EQ(serial.latency.mean(), parallel.latency.mean());
    EXPECT_EQ(serial.latency.max(), parallel.latency.max());
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable)
{
    // Run-to-run stability at a fixed thread count (not just 1-vs-8).
    ScopedThreads parallel(8);
    const auto a = trainClassifier(5);
    const auto b = trainClassifier(5);
    ASSERT_EQ(a.first.size(), b.first.size());
    for (size_t s = 0; s < a.first.size(); ++s)
        EXPECT_EQ(a.first[s], b.first[s]);
    for (size_t i = 0; i < a.second.size(); ++i)
        EXPECT_TRUE(bitIdentical(a.second[i], b.second[i]));
}

TEST(ParallelDeterminism, SparseAttentionBitIdentical)
{
    // The Level-2 sparse attention kernels (tensor/sparse_ops.hpp) use
    // the same one-chunk-per-output-row parallelization as the dense
    // GEMMs; a sequence long enough to cross the MAC threshold must be
    // bit-identical at DOTA_THREADS=1 and 8.
    const size_t n = 384, d = 64;
    Rng rng(2077);
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const Matrix proxy = Matrix::randomNormal(n, n, rng);
    const SparseMask mask = SparseMask::fromDense(topkMask(proxy, n / 4));
    const float sc = 1.0f / std::sqrt(static_cast<float>(d));

    auto [serial, parallel] = atBothThreadCounts(
        [&] { return sparseMaskedAttention(q, k, v, mask, sc); });
    EXPECT_TRUE(bitIdentical(serial, parallel));
}

} // namespace
} // namespace dota
