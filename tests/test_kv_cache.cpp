/**
 * @file
 * Property tests of the paged KV-cache allocator (serve/kv_cache.hpp):
 * conservation (no page leaked or double-freed across randomized
 * create/append/shrink/free interleavings), page-table correctness
 * against a naive flat reference, the admission-control byte budget,
 * and the deterministic lowest-free-page-first allocation order that
 * the engine's bit-identity contract rests on.
 */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "serve/kv_cache.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

KvCacheConfig
tinyArena(size_t pages = 32, size_t page_tokens = 8)
{
    KvCacheConfig cfg;
    cfg.page_tokens = page_tokens;
    cfg.bytes_per_token = 64;
    cfg.budget_bytes = pages * page_tokens * cfg.bytes_per_token;
    return cfg;
}

// ------------------------------------------------------------- geometry

TEST(KvCache, GeometryAndFeasibility)
{
    PagedKvAllocator a(tinyArena(32, 8));
    EXPECT_EQ(a.totalPages(), 32u);
    EXPECT_EQ(a.freePages(), 32u);
    EXPECT_EQ(a.usedPages(), 0u);
    EXPECT_EQ(a.pageBytes(), 8u * 64u);
    EXPECT_EQ(a.pagesFor(0), 0u);
    EXPECT_EQ(a.pagesFor(1), 1u);
    EXPECT_EQ(a.pagesFor(8), 1u);
    EXPECT_EQ(a.pagesFor(9), 2u);
    EXPECT_TRUE(a.feasible(32 * 8));
    EXPECT_FALSE(a.feasible(32 * 8 + 1));
}

TEST(KvCache, LowestFreePageAllocatedFirst)
{
    PagedKvAllocator a(tinyArena(8, 4));
    ASSERT_TRUE(a.createSeq(1));
    ASSERT_TRUE(a.createSeq(2));
    ASSERT_TRUE(a.appendTokens(1, 8));  // pages 0, 1
    ASSERT_TRUE(a.appendTokens(2, 4));  // page 2
    EXPECT_EQ(a.pageTable(1), (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(a.pageTable(2), (std::vector<uint32_t>{2}));
    // Free the middle sequence: its page returns to the free list and
    // the next allocation must take it (lowest id first), not page 3.
    a.freeSeq(1);
    ASSERT_TRUE(a.createSeq(3));
    ASSERT_TRUE(a.appendTokens(3, 12)); // pages 0, 1, 3
    EXPECT_EQ(a.pageTable(3), (std::vector<uint32_t>{0, 1, 3}));
}

// --------------------------------------------------------- conservation

/**
 * Randomized create/append/shrink/free interleaving against a naive
 * reference model. Invariants checked at every operation: free + used
 * pages always equals the arena total (no leak), page tables never
 * share a page (no double allocation), releasing is always accepted
 * (no double free — the allocator DOTA_ASSERTs internally), and the
 * byte budget is never exceeded.
 */
TEST(KvCache, RandomizedInterleavingsConservePages)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        PagedKvAllocator a(tinyArena(24, 4));
        Rng rng(test::deriveSeed(0xcafe, seed));
        std::map<uint64_t, size_t> ref; // seq -> token count
        uint64_t next_id = 0;
        for (size_t op = 0; op < 400; ++op) {
            const double u = rng.uniform();
            if (u < 0.35 || ref.empty()) {
                const uint64_t id = next_id++;
                ASSERT_TRUE(a.createSeq(id));
                ref[id] = 0;
            } else {
                // Pick an existing sequence deterministically.
                auto it = ref.begin();
                std::advance(it, rng.uniformInt(ref.size()));
                const uint64_t id = it->first;
                if (u < 0.70) {
                    const size_t grow = 1 + rng.uniformInt(10);
                    const bool fits =
                        a.pagesFor(it->second + grow) -
                            a.pagesFor(it->second) <=
                        a.freePages();
                    EXPECT_EQ(a.appendTokens(id, grow), fits);
                    if (fits)
                        it->second += grow;
                    else // all-or-nothing: length unchanged on failure
                        EXPECT_EQ(a.seqTokens(id), it->second);
                } else if (u < 0.85 && it->second > 0) {
                    const size_t keep = 1 + rng.uniformInt(it->second);
                    a.shrinkTo(id, keep);
                    it->second = std::min(it->second, keep);
                } else {
                    a.freeSeq(id);
                    ref.erase(it);
                }
            }
            // Conservation + budget after every operation.
            ASSERT_EQ(a.freePages() + a.usedPages(), a.totalPages());
            ASSERT_LE(a.usedBytes(), a.budgetBytes());
            size_t expect_pages = 0;
            std::vector<bool> owned(a.totalPages(), false);
            for (const auto &[id, tokens] : ref) {
                ASSERT_EQ(a.seqTokens(id), tokens);
                ASSERT_EQ(a.pageTable(id).size(), a.pagesFor(tokens));
                expect_pages += a.pagesFor(tokens);
                for (uint32_t p : a.pageTable(id)) {
                    ASSERT_LT(p, a.totalPages());
                    ASSERT_FALSE(owned[p]) << "page " << p
                                           << " doubly allocated";
                    owned[p] = true;
                }
            }
            ASSERT_EQ(a.usedPages(), expect_pages);
        }
    }
}

// ----------------------------------------------------------- page table

TEST(KvCache, LookupMatchesNaiveFlatReference)
{
    PagedKvAllocator a(tinyArena(64, 8));
    ASSERT_TRUE(a.createSeq(7));
    ASSERT_TRUE(a.appendTokens(7, 3));
    ASSERT_TRUE(a.appendTokens(7, 20)); // grows across page boundaries
    ASSERT_TRUE(a.appendTokens(7, 1));
    const std::vector<uint32_t> &table = a.pageTable(7);
    for (size_t i = 0; i < a.seqTokens(7); ++i) {
        // Naive flat reference: token i lives at slot i of a dense
        // array chunked into pages of page_tokens slots.
        const auto [page, slot] = a.lookup(7, i);
        EXPECT_EQ(page, table[i / a.pageTokens()]);
        EXPECT_EQ(slot, i % a.pageTokens());
    }
}

TEST(KvCache, ShrinkFreesWholeTrailingPagesOnly)
{
    PagedKvAllocator a(tinyArena(16, 8));
    ASSERT_TRUE(a.createSeq(1));
    ASSERT_TRUE(a.appendTokens(1, 30)); // 4 pages (8+8+8+6)
    EXPECT_EQ(a.usedPages(), 4u);
    // Keep 17 tokens -> 3 pages (the third holds one token).
    EXPECT_EQ(a.shrinkTo(1, 17), 1u);
    EXPECT_EQ(a.seqTokens(1), 17u);
    EXPECT_EQ(a.usedPages(), 3u);
    // No-op when keeping at least the current length.
    EXPECT_EQ(a.shrinkTo(1, 17), 0u);
    EXPECT_EQ(a.shrinkTo(1, 100), 0u);
    // Growth after a shrink reuses the freed (lowest) page.
    ASSERT_TRUE(a.appendTokens(1, 8));
    EXPECT_EQ(a.seqTokens(1), 25u);
    EXPECT_EQ(a.usedPages(), 4u);
}

// ------------------------------------------------------------ admission

TEST(KvCache, AdmissionNeverExceedsBudget)
{
    PagedKvAllocator a(tinyArena(4, 4)); // 16 token slots total
    ASSERT_TRUE(a.createSeq(1));
    EXPECT_TRUE(a.canFit(16));
    EXPECT_FALSE(a.canFit(17));
    ASSERT_TRUE(a.appendTokens(1, 13)); // 4 pages (13 -> 3.25)
    EXPECT_EQ(a.usedPages(), 4u);
    EXPECT_FALSE(a.canFit(4)); // only 3 slack slots, all pages taken
    // canFit is a fresh-allocation check, but in-page growth of an
    // existing sequence needs no new page and still succeeds.
    EXPECT_FALSE(a.canFit(3));
    ASSERT_TRUE(a.appendTokens(1, 3));
    EXPECT_FALSE(a.canFit(1));
    EXPECT_FALSE(a.appendTokens(1, 1));
    EXPECT_EQ(a.usedBytes(), a.budgetBytes());
}

TEST(KvCache, DeterministicOomPoint)
{
    // Two identical operation sequences hit OOM at exactly the same
    // operation with identical page tables — the property the engine's
    // deterministic preemption order is built on.
    auto run = [] {
        PagedKvAllocator a(tinyArena(6, 4));
        std::vector<size_t> history;
        for (uint64_t id = 0; id < 10; ++id) {
            a.createSeq(id);
            if (!a.appendTokens(id, 5)) {
                history.push_back(id);
                a.freeSeq(id);
            } else {
                history.push_back(1000 + a.pageTable(id).front());
            }
        }
        return history;
    };
    EXPECT_EQ(run(), run());
}

TEST(KvCache, PeakTracksHighWaterMark)
{
    PagedKvAllocator a(tinyArena(16, 4));
    ASSERT_TRUE(a.createSeq(1));
    ASSERT_TRUE(a.appendTokens(1, 40)); // 10 pages
    EXPECT_EQ(a.peakUsedPages(), 10u);
    a.shrinkTo(1, 4);
    EXPECT_EQ(a.usedPages(), 1u);
    EXPECT_EQ(a.peakUsedPages(), 10u); // peak survives the shrink
    EXPECT_EQ(a.peakUsedBytes(), 10u * a.pageBytes());
}

// ------------------------------------------- live migration (DESIGN §15)

TEST(KvCacheMigration, ExportImportRoundTrip)
{
    PagedKvAllocator src(tinyArena(8, 4));
    PagedKvAllocator dst(tinyArena(8, 4));
    ASSERT_TRUE(src.createSeq(7));
    ASSERT_TRUE(src.appendTokens(7, 11)); // 3 pages

    const KvSeqExport exp = src.exportSeq(7);
    EXPECT_EQ(exp.seq_id, 7u);
    EXPECT_EQ(exp.tokens, 11u);
    EXPECT_EQ(exp.pages.size(), 3u);
    EXPECT_EQ(PagedKvAllocator::verifyExport(exp), 0u);
    // Pure read: the source copy is untouched until torn down.
    EXPECT_TRUE(src.contains(7));
    EXPECT_EQ(src.verifySeq(7), 0u);

    ASSERT_TRUE(dst.importSeq(exp));
    EXPECT_EQ(dst.seqTokens(7), 11u);
    EXPECT_EQ(dst.usedPages(), 3u);
    EXPECT_EQ(dst.verifySeq(7), 0u); // seals travelled verbatim
    ASSERT_TRUE(dst.appendTokens(7, 2)); // decode continues
    EXPECT_EQ(dst.seqTokens(7), 13u);
    EXPECT_EQ(dst.verifySeq(7), 0u);
}

TEST(KvCacheMigration, ImportRefusesResidentCapacityAndPoison)
{
    PagedKvAllocator src(tinyArena(8, 4));
    ASSERT_TRUE(src.createSeq(1));
    ASSERT_TRUE(src.appendTokens(1, 10)); // 3 pages
    const KvSeqExport exp = src.exportSeq(1);

    // Already-resident id: refused, arena untouched.
    PagedKvAllocator busy(tinyArena(8, 4));
    ASSERT_TRUE(busy.createSeq(1));
    EXPECT_FALSE(busy.importSeq(exp));
    EXPECT_EQ(busy.usedPages(), 0u);

    // Capacity short by one page: all-or-nothing, nothing allocated.
    PagedKvAllocator small(tinyArena(2, 4));
    EXPECT_FALSE(small.importSeq(exp));
    EXPECT_EQ(small.usedPages(), 0u);
    EXPECT_EQ(small.freePages(), 2u);

    // Poisoned in transit: the whole sequence is refused.
    src.corruptPage(src.pageTable(1)[1], KvCorruption::BitFlip);
    const KvSeqExport bad = src.exportSeq(1);
    EXPECT_EQ(PagedKvAllocator::verifyExport(bad), 1u);
    PagedKvAllocator dst(tinyArena(8, 4));
    EXPECT_FALSE(dst.importSeq(bad));
    EXPECT_EQ(dst.usedPages(), 0u);
    EXPECT_EQ(dst.freePages(), 8u);
}

TEST(KvCacheMigration, ChurnNeverFragmentsAllOrNothingAdmission)
{
    // Property: after any number of export/import/free/shrink cycles,
    // an arena admits exactly what a fresh arena of equal effective
    // capacity admits — paging means churn can never strand free pages
    // in unusable holes, so migration admission stays all-or-nothing
    // arithmetic forever.
    const size_t kPages = 24, kPageTokens = 4;
    PagedKvAllocator a(tinyArena(kPages, kPageTokens));
    PagedKvAllocator b(tinyArena(kPages, kPageTokens));
    Rng rng(17);
    uint64_t next_id = 0;
    std::vector<std::pair<PagedKvAllocator *, uint64_t>> live;

    for (size_t step = 0; step < 400; ++step) {
        const uint64_t op = rng.uniformInt(4);
        if (op == 0) { // admit a fresh sequence on a
            const size_t toks = 1 + rng.uniformInt(20);
            if (a.canFit(toks)) {
                const uint64_t id = next_id++;
                ASSERT_TRUE(a.createSeq(id));
                ASSERT_TRUE(a.appendTokens(id, toks));
                live.push_back({&a, id});
            }
        } else if (op == 1 && !live.empty()) { // migrate a <-> b
            const size_t pick = rng.uniformInt(live.size());
            auto [from, id] = live[pick];
            PagedKvAllocator *to = from == &a ? &b : &a;
            const KvSeqExport exp = from->exportSeq(id);
            if (to->importSeq(exp)) {
                from->freeSeq(id);
                live[pick].first = to;
            }
        } else if (op == 2 && !live.empty()) { // finish a sequence
            const size_t pick = rng.uniformInt(live.size());
            live[pick].first->freeSeq(live[pick].second);
            live.erase(live.begin() +
                       static_cast<ptrdiff_t>(pick));
        } else if (op == 3 && !live.empty()) { // DOTA eviction
            const size_t pick = rng.uniformInt(live.size());
            auto [arena, id] = live[pick];
            const size_t keep =
                1 + arena->seqTokens(id) / 2;
            arena->shrinkTo(id, keep);
        }

        for (PagedKvAllocator *arena : {&a, &b}) {
            // Conservation: free + used + quarantined == total.
            EXPECT_EQ(arena->freePages() + arena->usedPages() +
                          arena->quarantinedPages(),
                      arena->totalPages());
            // No fragmentation: admission matches a freshly built
            // arena holding exactly this many free pages, at every
            // demand size around the boundary — churn never strands
            // free capacity in unusable holes.
            if (arena->freePages() > 0) {
                const PagedKvAllocator fresh(
                    tinyArena(arena->freePages(), kPageTokens));
                for (size_t toks :
                     {size_t(1), size_t(kPageTokens),
                      arena->freePages() * kPageTokens,
                      arena->freePages() * kPageTokens + 1}) {
                    EXPECT_EQ(arena->canFit(toks), fresh.canFit(toks))
                        << "step " << step << " toks " << toks;
                }
            }
            // Every resident still seals clean (exports are verbatim).
            for (uint32_t page : arena->usedPageList())
                EXPECT_TRUE(arena->verifyPage(page));
        }
    }
}

} // namespace
} // namespace dota
