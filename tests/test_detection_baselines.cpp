/**
 * @file
 * Tests for the oracle and ELSA detection baselines plus the detection
 * quality metrics.
 */
#include <gtest/gtest.h>

#include "detect/elsa_detector.hpp"
#include "detect/metrics.hpp"
#include "detect/oracle_detector.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {
namespace {

TEST(Oracle, PerfectTopkRecall)
{
    OracleDetector oracle(0.25);
    Rng rng(151);
    const Matrix q = Matrix::randomNormal(12, 8, rng);
    const Matrix k = Matrix::randomNormal(12, 8, rng);
    oracle.observeQK(0, 0, q, k);
    const Matrix mask = oracle.selectMask(0, 0, false);
    const Matrix scores = matmulBT(q, k);
    EXPECT_DOUBLE_EQ(topkRecall(scores, mask, 3), 1.0);
}

TEST(Oracle, CausalSelection)
{
    OracleDetector oracle(0.5);
    Rng rng(152);
    const Matrix q = Matrix::randomNormal(8, 4, rng);
    const Matrix k = Matrix::randomNormal(8, 4, rng);
    oracle.observeQK(0, 0, q, k);
    const Matrix mask = oracle.selectMask(0, 0, true);
    for (size_t r = 0; r < 8; ++r)
        for (size_t c = r + 1; c < 8; ++c)
            EXPECT_FLOAT_EQ(mask(r, c), 0.0f);
}

TEST(Oracle, RetentionAdjustable)
{
    OracleDetector oracle(0.1);
    EXPECT_DOUBLE_EQ(oracle.retention(), 0.1);
    oracle.setRetention(0.3);
    Rng rng(153);
    const Matrix q = Matrix::randomNormal(10, 4, rng);
    const Matrix k = Matrix::randomNormal(10, 4, rng);
    oracle.observeQK(0, 0, q, k);
    const Matrix mask = oracle.selectMask(0, 0, false);
    EXPECT_NEAR(maskDensity(mask), 0.3, 1e-9);
}

TEST(Elsa, MaskDensityMatchesRetention)
{
    ElsaDetectorConfig cfg;
    cfg.retention = 0.25;
    ElsaDetector elsa(cfg);
    Rng rng(154);
    const Matrix q = Matrix::randomNormal(16, 8, rng);
    const Matrix k = Matrix::randomNormal(16, 8, rng);
    elsa.observeQK(0, 0, q, k);
    const Matrix mask = elsa.selectMask(0, 0, false);
    EXPECT_NEAR(maskDensity(mask), 0.25, 1e-9);
}

TEST(Elsa, BeatsRandomSelection)
{
    ElsaDetectorConfig cfg;
    cfg.retention = 0.25;
    cfg.hash_bits = 64;
    ElsaDetector elsa(cfg);
    Rng rng(155);
    double elsa_recall = 0.0, random_recall = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
        const Matrix q = Matrix::randomNormal(24, 16, rng);
        const Matrix k = Matrix::randomNormal(24, 16, rng);
        elsa.observeQK(0, 0, q, k);
        const Matrix mask = elsa.selectMask(0, 0, false);
        const Matrix scores = matmulBT(q, k);
        elsa_recall += topkRecall(scores, mask, 6);
        // Random mask with the same density for contrast.
        const Matrix rnd = topkMask(Matrix::randomNormal(24, 24, rng), 6);
        random_recall += topkRecall(scores, rnd, 6);
    }
    EXPECT_GT(elsa_recall / trials, random_recall / trials + 0.15);
}

TEST(Elsa, MoreHashBitsBetterRecall)
{
    Rng data_rng(156);
    const Matrix q = Matrix::randomNormal(32, 16, data_rng);
    const Matrix k = Matrix::randomNormal(32, 16, data_rng);
    const Matrix scores = matmulBT(q, k);
    double recall_small = 0.0, recall_large = 0.0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
        ElsaDetectorConfig small;
        small.hash_bits = 8;
        small.retention = 0.25;
        small.seed = 100 + seed;
        ElsaDetector e_small(small);
        e_small.observeQK(0, 0, q, k);
        recall_small +=
            topkRecall(scores, e_small.selectMask(0, 0, false), 8);

        ElsaDetectorConfig large = small;
        large.hash_bits = 256;
        ElsaDetector e_large(large);
        e_large.observeQK(0, 0, q, k);
        recall_large +=
            topkRecall(scores, e_large.selectMask(0, 0, false), 8);
    }
    EXPECT_GT(recall_large, recall_small);
}

TEST(Elsa, TrainingFreeInterface)
{
    ElsaDetector elsa(ElsaDetectorConfig{});
    EXPECT_TRUE(elsa.scoreGradient(0, 0).empty());
}

TEST(Metrics, OracleScoresPerfectOnModel)
{
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 32;
    mc.classes = 2;
    TransformerClassifier model(mc);
    TaskConfig tc;
    tc.seq_len = 20;
    tc.in_dim = 8;
    tc.classes = 2;
    SyntheticTask task(tc);
    OracleDetector oracle(0.25);
    const auto q = evaluateDetection(model, task, oracle, 3, 0.25);
    EXPECT_NEAR(q.recall, 1.0, 1e-9);
    EXPECT_NEAR(q.density, 0.25, 1e-9);
    // The model is untrained, so attention is near-uniform; perfect
    // top-k still beats the uniform 0.25 share.
    EXPECT_GT(q.mass_recall, 0.3);
}

TEST(Metrics, HarvestMasksShapes)
{
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 32;
    mc.classes = 2;
    TransformerClassifier model(mc);
    OracleDetector oracle(0.2);
    model.setHook(&oracle);
    Rng rng(157);
    model.forward(Matrix::randomNormal(10, 8, rng));
    model.setHook(nullptr);
    const auto masks = harvestMasks(model);
    ASSERT_EQ(masks.size(), 4u); // 2 layers x 2 heads
    for (const SparseMask &m : masks) {
        EXPECT_EQ(m.rows(), 10u);
        EXPECT_EQ(m.row(0).size(), 2u); // 20% of 10
    }
}

} // namespace
} // namespace dota
