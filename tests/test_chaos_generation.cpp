/**
 * @file
 * Chaos-hardened generation tests (DESIGN.md §14): the generation
 * engine run under an adversarial fault plan — two device kills
 * mid-decode, KV-page corruption, transient step errors, watchdog
 * active — must stay deterministic (bit-identical reports at
 * DOTA_THREADS=1 and 8, pinned against
 * tests/data/golden_chaos_generation.txt), conserve every request
 * (completed + shed + failed = admitted), and never serve a corrupted
 * token. Also pins the admission guard: a prompt that could never fit
 * the KV arena is shed up-front as infeasible rather than admitted
 * into a retry/preempt livelock.
 *
 * Regenerate the golden after an intentional engine change with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_serve_tests --gtest_filter='ChaosGeneration.*'
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "serve/engine.hpp"
#include "serve/fault.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

constexpr uint64_t kFaultSeed = 7;

/**
 * The chaos scenario: both of devices 0 and 1 die while decode work is
 * resident (and later revive), device 2 twice suffers a KV-page
 * corruption, and every step carries a 1% transient-failure chance.
 */
FaultPlan
chaosPlan()
{
    const FaultPlanParse parsed = tryParseFaultPlan(
        "kill:0@30,revive:0@95,kill:1@60,revive:1@150,"
        "corrupt:2@45,corrupt:2@75,transient:0.01");
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.plan;
}

GenTraceConfig
chaosTrace()
{
    // Long output budgets keep decode work resident across the whole
    // fault window, so the kills strike mid-decode and the corrupt
    // events find pages to poison.
    GenTraceConfig tc = test::smallGenTrace(48, 400.0, 71);
    tc.out_min = 96;
    tc.out_max = 256;
    return tc;
}

EngineConfig
chaosEngine()
{
    EngineConfig ec = test::smallEngine(3);
    ec.policy.degrade_depth_1 = 3.0; // dead devices deepen the ladder
    ec.policy.degrade_depth_2 = 6.0;
    ec.batch.watchdog_stall_ms = 25.0;
    // Re-prefill-only baseline: this suite (and its golden) pins the
    // classic failover path; live migration has its own golden in
    // test_migration.cpp, which also asserts it beats this baseline.
    ec.migrate.enabled = false;
    ec.migrate.probation_steps = 0;
    return ec;
}

ServeReport
chaosRun()
{
    const GenerationEngine engine(chaosEngine(),
                                  benchmark(BenchmarkId::Text));
    return engine.run(generateGenTrace(chaosTrace()), chaosPlan(),
                      kFaultSeed);
}

// ----------------------------------------------------------- invariants

TEST(ChaosGeneration, ConservesRequestsAndServesNoCorruptedToken)
{
    const ServeReport rep = chaosRun();
    const GenTrace trace = generateGenTrace(chaosTrace());

    // Every admitted request reaches exactly one terminal state even
    // with two devices dying mid-run.
    EXPECT_EQ(rep.requests, trace.requests.size());
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
    EXPECT_GT(rep.completed, 0u);

    // The kills actually struck in-flight decode work (the scenario the
    // golden pins): at least two decode failovers, each victim's lost
    // tokens counted as wasted and re-generated after failover.
    EXPECT_GE(rep.gen.decode_failovers, 2u);
    EXPECT_GE(rep.failovers,
              rep.gen.prefill_failovers + rep.gen.decode_failovers);
    EXPECT_GT(rep.gen.wasted_decode_tokens, 0u);

    // Corruption was injected, detected and quarantined — never served:
    // every completed request still emits exactly its output budget.
    EXPECT_GE(rep.gen.corrupted_pages_detected, 1u);
    EXPECT_GE(rep.gen.corruption_reprefills, 1u);
    EXPECT_EQ(rep.gen.quarantined_pages, rep.gen.corrupted_pages_detected);
    for (const RequestOutcome &out : rep.outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        EXPECT_EQ(out.generated, trace.requests[out.id].output_len)
            << "request " << out.id;
    }

    // Recovery latency telemetry is consistent.
    EXPECT_GT(rep.gen.recoveries, 0u);
    EXPECT_LE(rep.gen.recovery_p50_ms, rep.gen.recovery_p95_ms);
    EXPECT_LE(rep.gen.recovery_p95_ms, rep.gen.recovery_max_ms);
}

TEST(ChaosGeneration, ReplayableFromSeedTraceAndPlan)
{
    const ServeReport a = chaosRun();
    const ServeReport b = chaosRun();
    test::expectIdentical(a, b);
}

TEST(ChaosGeneration, EmptyPlanIsBitIdenticalToFaultFreeRun)
{
    const GenerationEngine engine(chaosEngine(),
                                  benchmark(BenchmarkId::Text));
    const GenTrace trace = generateGenTrace(chaosTrace());
    const ServeReport plain = engine.run(trace);
    const ServeReport chaos_off = engine.run(trace, FaultPlan{}, 999);
    test::expectIdentical(plain, chaos_off);
    EXPECT_EQ(plain.gen.transient_steps, 0u);
    EXPECT_EQ(plain.gen.corrupted_pages_detected, 0u);
}

// ------------------------------------------------------ admission guard

TEST(ChaosGeneration, InfeasiblePromptShedUpFrontNotLivelocked)
{
    // A 2 MB budget holds 256 tokens; every prompt is 400+ tokens, so
    // none could ever fit even an empty arena. The guard must shed them
    // all at arrival — no retries, no preemption churn, no livelock.
    GenTraceConfig tc = test::smallGenTrace(20, 300.0);
    tc.arrivals.len_min = 400;
    tc.arrivals.len_max = 1024;
    EngineConfig ec = test::smallEngine(2);
    ec.kv.budget_bytes = 2ull << 20;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const ServeReport rep = engine.run(generateGenTrace(tc));

    EXPECT_EQ(rep.shed_infeasible, rep.requests);
    EXPECT_EQ(rep.completed, 0u);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
    EXPECT_EQ(rep.retries, 0u);
    EXPECT_EQ(rep.gen.preemptions, 0u);
    for (const RequestOutcome &out : rep.outcomes)
        EXPECT_EQ(out.status, RequestStatus::ShedInfeasible);
}

// --------------------------------------------------------------- golden

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) +
           "/golden_chaos_generation.txt";
}

/** Pinned fields: the generation headline plus the chaos telemetry. */
std::vector<std::pair<std::string, std::string>>
pinnedFields(const ServeReport &rep)
{
    auto hex = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%a", v);
        return std::string(buf);
    };
    auto num = [](size_t v) { return std::to_string(v); };
    const GenMetrics &g = rep.gen;
    return {
        {"completed", num(rep.completed)},
        {"failed", num(rep.failed)},
        {"shed", num(rep.shed())},
        {"shed_infeasible", num(rep.shed_infeasible)},
        {"retries", num(rep.retries)},
        {"failovers", num(rep.failovers)},
        {"transient_errors", num(rep.transient_errors)},
        {"breaker_trips", num(rep.breaker_trips)},
        {"ttft_p50_ms", hex(g.ttft_p50_ms)},
        {"ttft_p99_ms", hex(g.ttft_p99_ms)},
        {"tpot_p50_ms", hex(g.tpot_p50_ms)},
        {"steps", num(g.steps)},
        {"prefill_tokens", num(g.prefill_tokens)},
        {"decode_tokens", num(g.decode_tokens)},
        {"output_tokens", num(g.output_tokens)},
        {"kv_peak_pages", num(g.kv_peak_pages)},
        {"preemptions", num(g.preemptions)},
        {"prefill_failovers", num(g.prefill_failovers)},
        {"decode_failovers", num(g.decode_failovers)},
        {"wasted_prefill_tokens", num(g.wasted_prefill_tokens)},
        {"wasted_decode_tokens", num(g.wasted_decode_tokens)},
        {"transient_steps", num(g.transient_steps)},
        {"corrupted_pages_detected", num(g.corrupted_pages_detected)},
        {"corruption_reprefills", num(g.corruption_reprefills)},
        {"quarantined_pages", num(g.quarantined_pages)},
        {"watchdog_migrations", num(g.watchdog_migrations)},
        {"recoveries", num(g.recoveries)},
        {"recovery_p50_ms", hex(g.recovery_p50_ms)},
        {"recovery_p95_ms", hex(g.recovery_p95_ms)},
        {"recovery_max_ms", hex(g.recovery_max_ms)},
        {"completed_by_level_0",
         num(rep.completed_by_level.size() > 0
                 ? rep.completed_by_level[0]
                 : 0)},
        {"completed_by_level_1",
         num(rep.completed_by_level.size() > 1
                 ? rep.completed_by_level[1]
                 : 0)},
        {"completed_by_level_2",
         num(rep.completed_by_level.size() > 2
                 ? rep.completed_by_level[2]
                 : 0)},
        {"horizon_ms", hex(rep.horizon_ms)},
    };
}

std::map<std::string, std::string>
readGolden()
{
    std::ifstream in(goldenPath());
    std::map<std::string, std::string> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, value;
        if (ls >> key >> value)
            out[key] = value;
    }
    return out;
}

void
writeGolden(const std::vector<std::pair<std::string, std::string>> &kv)
{
    std::ofstream out(goldenPath());
    out << "# GenerationEngine chaos golden run (see "
           "test_chaos_generation.cpp):\n"
        << "# 48 Text prompts, poisson 400 req/s seed 71, 3x DOTA-F,\n"
        << "# fault plan kill:0@30,revive:0@95,kill:1@60,revive:1@150,\n"
        << "# corrupt:2@45,corrupt:2@75,transient:0.01 at fault seed 7,\n"
        << "# watchdog 25 ms. Doubles are C99 hex floats. Regenerate\n"
        << "# with DOTA_REGEN_GOLDEN=1 after intentional changes.\n";
    for (const auto &[key, value] : kv)
        out << key << " " << value << "\n";
}

void
expectMatchesGolden(const ServeReport &rep)
{
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    for (const auto &[key, value] : pinnedFields(rep)) {
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "field " << key;
        EXPECT_EQ(value, it->second) << "field " << key;
    }
}

TEST(ChaosGeneration, SerialRunMatchesGoldenFile)
{
    test::ScopedThreads serial(1);
    const ServeReport rep = chaosRun();
    if (envFlag("DOTA_REGEN_GOLDEN")) {
        writeGolden(pinnedFields(rep));
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    expectMatchesGolden(rep);
}

TEST(ChaosGeneration, ParallelRunMatchesGoldenExactly)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    test::ScopedThreads parallel(8);
    expectMatchesGolden(chaosRun());
}

} // namespace
} // namespace dota
