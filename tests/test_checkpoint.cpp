/**
 * @file
 * Tests for the crash-safe checkpointing stack: CRC32, the checksummed
 * record-file container, model checkpoint round-trips for every paper
 * benchmark's tiny proxy, full training-state snapshots (Adam moments,
 * RNG, loss history, guard counters), the corruption-injection harness
 * (every mode must be *detected*), resumeLatest fallback, retention
 * pruning, atomic writes, and the numerical guard rails.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/fileio.hpp"
#include "common/recordfile.hpp"
#include "nn/serialize.hpp"
#include "train/checkpoint.hpp"
#include "train/corrupt.hpp"
#include "train/guardrails.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

/** Fresh empty scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "dota_ckpt_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

bool
bitsEqual(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectorAndChaining)
{
    // The standard IEEE CRC32 check value.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    // Incremental computation over a split buffer equals one-shot.
    const std::string data = "the quick brown fox";
    const uint32_t whole = crc32(data);
    const uint32_t part = crc32(data.data() + 7, data.size() - 7,
                                crc32(data.data(), 7));
    EXPECT_EQ(whole, part);
    // Any single flipped bit changes the checksum.
    std::string flipped = data;
    flipped[3] ^= 0x10;
    EXPECT_NE(crc32(flipped), whole);
}

// ---------------------------------------------------------------- container

TEST(RecordFile, RoundTrip)
{
    RecordFileBuilder builder(recordKind('T', 'E', 'S', 'T'), 7);
    const std::string binary("\x00\xff\x01\x7f", 4);
    builder.add("alpha", "payload-a");
    builder.add("empty", "");
    builder.add("binary", binary);
    const std::string bytes = builder.finish();

    RecordFile file;
    ASSERT_EQ(parseRecordFile(bytes, file), RecordFileStatus::Ok);
    EXPECT_EQ(file.kind, recordKind('T', 'E', 'S', 'T'));
    EXPECT_EQ(file.schema_version, 7u);
    ASSERT_EQ(file.records.size(), 3u);
    EXPECT_EQ(file.records[0].first, "alpha");
    EXPECT_EQ(file.records[0].second, "payload-a");
    ASSERT_NE(file.find("empty"), nullptr);
    EXPECT_TRUE(file.find("empty")->empty());
    ASSERT_NE(file.find("binary"), nullptr);
    EXPECT_EQ(*file.find("binary"), binary);
    EXPECT_EQ(file.find("missing"), nullptr);
}

TEST(RecordFile, GarbageParsesToStatusNotUB)
{
    RecordFile file;
    std::string error;
    EXPECT_EQ(parseRecordFile("", file, &error),
              RecordFileStatus::BadMagic);
    EXPECT_EQ(parseRecordFile("plain text, no magic", file),
              RecordFileStatus::BadMagic);
    // Correct magic but nothing after it: a torn header.
    EXPECT_EQ(parseRecordFile("DOTC", file), RecordFileStatus::Truncated);

    RecordFileBuilder builder(recordKind('T', 'E', 'S', 'T'), 1);
    builder.add("r", "payload");
    const std::string good = builder.finish();
    // Any strict prefix long enough to keep the header is Truncated.
    EXPECT_EQ(parseRecordFile(good.substr(0, good.size() - 5), file),
              RecordFileStatus::Truncated);
    // A flipped payload byte (footer intact) is Corrupt.
    std::string damaged = good;
    damaged[20] ^= 0x40;
    EXPECT_EQ(parseRecordFile(damaged, file, &error),
              RecordFileStatus::Corrupt);
    EXPECT_FALSE(error.empty());
    // A future container version is refused, not misparsed.
    std::string future = good;
    future[4] = 9;
    EXPECT_EQ(parseRecordFile(future, file),
              RecordFileStatus::BadVersion);
}

// ---------------------------------------------------------------- models

TEST(Serialize, RoundTripAllBenchmarkModels)
{
    const std::string dir = scratchDir("models");
    for (const Benchmark &b : allBenchmarks()) {
        const std::string path = dir + "/" + b.name + ".bin";
        if (b.id == BenchmarkId::LM) {
            TransformerConfig cfg = b.tiny;
            cfg.max_seq = 128;
            CausalLM a(cfg);
            saveCheckpoint(a, path);
            EXPECT_TRUE(isCheckpoint(path));
            TransformerConfig cfg2 = cfg;
            cfg2.seed = 999;
            CausalLM c(cfg2);
            ASSERT_EQ(tryLoadCheckpoint(c, path), LoadStatus::Ok)
                << b.name;
            std::vector<Parameter *> pa, pc;
            a.collectParams(pa);
            c.collectParams(pc);
            ASSERT_EQ(pa.size(), pc.size());
            for (size_t i = 0; i < pa.size(); ++i)
                EXPECT_TRUE(bitsEqual(pa[i]->value, pc[i]->value))
                    << b.name << " param " << pa[i]->name;
            // Same input, bit-identical loss after the round trip.
            const SyntheticGrammar grammar(proxyGrammarFor(b));
            Rng rng(3);
            const std::vector<int> toks = grammar.sample(rng);
            EXPECT_EQ(a.lmLoss(toks, false), c.lmLoss(toks, false));
        } else {
            TransformerClassifier a(b.tiny);
            saveCheckpoint(a, path);
            EXPECT_TRUE(isCheckpoint(path));
            TransformerConfig cfg2 = b.tiny;
            cfg2.seed = 999;
            TransformerClassifier c(cfg2);
            ASSERT_EQ(tryLoadCheckpoint(c, path), LoadStatus::Ok)
                << b.name;
            std::vector<Parameter *> pa, pc;
            a.collectParams(pa);
            c.collectParams(pc);
            ASSERT_EQ(pa.size(), pc.size());
            for (size_t i = 0; i < pa.size(); ++i)
                EXPECT_TRUE(bitsEqual(pa[i]->value, pc[i]->value))
                    << b.name << " param " << pa[i]->name;
            Rng rng(3);
            const Matrix x =
                Matrix::randomNormal(8, b.tiny.in_dim, rng);
            EXPECT_TRUE(bitsEqual(a.forward(x), c.forward(x)))
                << b.name;
        }
    }
}

TEST(Serialize, ArchMismatchNamesBothSides)
{
    const std::string dir = scratchDir("mismatch");
    const std::string path = dir + "/ckpt.bin";
    TransformerConfig cfg;
    cfg.in_dim = 8;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.ffn_dim = 32;
    cfg.classes = 2;
    TransformerClassifier a(cfg);
    saveCheckpoint(a, path);

    TransformerConfig other = cfg;
    other.dim = 32;
    other.ffn_dim = 64;
    TransformerClassifier b(other);
    std::string error;
    EXPECT_EQ(tryLoadCheckpoint(b, path, &error),
              LoadStatus::ArchMismatch);
    // The diagnostic names what the file holds AND what the model wants.
    EXPECT_NE(error.find("checkpoint has"), std::string::npos) << error;
    EXPECT_NE(error.find("module expects"), std::string::npos) << error;

    // A failed load leaves the target untouched.
    std::vector<Parameter *> pb;
    b.collectParams(pb);
    TransformerClassifier fresh(other);
    std::vector<Parameter *> pf;
    fresh.collectParams(pf);
    for (size_t i = 0; i < pb.size(); ++i)
        EXPECT_TRUE(bitsEqual(pb[i]->value, pf[i]->value));

    // Wrong parameter *count* is also an ArchMismatch, not a crash.
    TransformerConfig deeper = cfg;
    deeper.layers = 2;
    TransformerClassifier d(deeper);
    EXPECT_EQ(tryLoadCheckpoint(d, path, &error),
              LoadStatus::ArchMismatch);
    EXPECT_NE(error.find("parameter records"), std::string::npos)
        << error;
}

TEST(Serialize, IsCheckpointRejectsShortAndForeignFiles)
{
    const std::string dir = scratchDir("sniff");
    const std::string empty = dir + "/empty";
    const std::string shorty = dir + "/short";
    const std::string text = dir + "/text";
    ASSERT_TRUE(writeFileAtomic(empty, ""));
    ASSERT_TRUE(writeFileAtomic(shorty, "DOTC"));
    ASSERT_TRUE(writeFileAtomic(text, "not a checkpoint at all"));
    EXPECT_FALSE(isCheckpoint(empty));
    EXPECT_FALSE(isCheckpoint(shorty));
    EXPECT_FALSE(isCheckpoint(text));
    EXPECT_FALSE(isCheckpoint(dir + "/missing"));
    // A *training* checkpoint is a record file but not a model one.
    std::string bytes =
        RecordFileBuilder(recordKind('T', 'R', 'N', 'S'), 1).finish();
    const std::string train = dir + "/train";
    ASSERT_TRUE(writeFileAtomic(train, bytes));
    EXPECT_FALSE(isCheckpoint(train));
    // tryLoad classifies non-checkpoints as a status, not a crash.
    TransformerConfig cfg;
    cfg.in_dim = 8;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.ffn_dim = 32;
    cfg.classes = 2;
    TransformerClassifier m(cfg);
    EXPECT_EQ(tryLoadCheckpoint(m, text), LoadStatus::NotACheckpoint);
    EXPECT_EQ(tryLoadCheckpoint(m, dir + "/missing"),
              LoadStatus::IoError);
    EXPECT_EQ(tryLoadCheckpoint(m, train), LoadStatus::NotACheckpoint);
}

// --------------------------------------------------------- training state

/** Tiny classifier + trainer used by the training-state tests. */
struct TrainRig
{
    TaskConfig tc;
    TransformerConfig mc;
    SyntheticTask task;
    TransformerClassifier model;

    TrainRig()
        : tc(makeTask()), mc(makeModel()), task(tc), model(mc)
    {}

    static TaskConfig
    makeTask()
    {
        TaskConfig t;
        t.seq_len = 16;
        t.in_dim = 8;
        t.classes = 2;
        t.signal_count = 2;
        t.seed = 77;
        return t;
    }

    static TransformerConfig
    makeModel()
    {
        TransformerConfig m;
        m.in_dim = 8;
        m.dim = 16;
        m.heads = 2;
        m.layers = 1;
        m.ffn_dim = 32;
        m.classes = 2;
        m.seed = 5;
        return m;
    }

    TrainConfig
    trainCfg(size_t steps) const
    {
        TrainConfig cfg;
        cfg.steps = steps;
        cfg.batch = 2;
        cfg.data_seed = 9;
        return cfg;
    }
};

TEST(TrainCheckpoint, SnapshotRoundTripIsBitExact)
{
    const std::string dir = scratchDir("snapshot");
    TrainRig rig;
    TrainConfig cfg = rig.trainCfg(4);
    ClassifierTrainer trainer(rig.model, rig.task, cfg);
    trainer.train();

    std::vector<Parameter *> params;
    rig.model.collectParams(params);
    Adam opt(params);
    Rng rng(123);
    rng.normal(); // leave a cached Box-Muller value in flight
    std::vector<double> losses = trainer.lossHistory();
    GuardRailStats guard;
    guard.skipped_steps = 3;
    guard.clipped_steps = 1;
    TrainingSnapshot snap =
        captureSnapshot(losses.size(), params, opt, rng, losses, guard);

    const std::string path = dir + "/" + checkpointFileName(4);
    ASSERT_TRUE(trySaveTrainCheckpoint(snap, path));

    TrainingSnapshot loaded;
    std::string error;
    ASSERT_EQ(tryLoadTrainCheckpoint(path, loaded, &error),
              LoadStatus::Ok)
        << error;
    EXPECT_EQ(loaded.step, snap.step);
    EXPECT_EQ(loaded.adam_t, snap.adam_t);
    ASSERT_EQ(loaded.params.size(), snap.params.size());
    for (size_t i = 0; i < snap.params.size(); ++i) {
        EXPECT_EQ(loaded.params[i].first, snap.params[i].first);
        EXPECT_TRUE(
            bitsEqual(loaded.params[i].second, snap.params[i].second));
        // Adam moments survive byte-for-byte.
        EXPECT_TRUE(bitsEqual(loaded.adam_m[i], snap.adam_m[i]));
        EXPECT_TRUE(bitsEqual(loaded.adam_v[i], snap.adam_v[i]));
    }
    for (size_t w = 0; w < 4; ++w)
        EXPECT_EQ(loaded.data_rng.s[w], snap.data_rng.s[w]);
    EXPECT_EQ(loaded.data_rng.has_cached, snap.data_rng.has_cached);
    EXPECT_EQ(loaded.data_rng.cached, snap.data_rng.cached);
    ASSERT_EQ(loaded.loss_history.size(), snap.loss_history.size());
    for (size_t i = 0; i < snap.loss_history.size(); ++i)
        EXPECT_EQ(loaded.loss_history[i], snap.loss_history[i]);
    EXPECT_EQ(loaded.guard.skipped_steps, 3u);
    EXPECT_EQ(loaded.guard.clipped_steps, 1u);

    // The restored RNG continues the exact stream.
    Rng replica(1);
    replica.setState(loaded.data_rng);
    Rng original(1);
    original.setState(snap.data_rng);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(original.normal(), replica.normal());
}

TEST(TrainCheckpoint, EveryCorruptionModeIsDetected)
{
    const std::string dir = scratchDir("corrupt");
    TrainRig rig;
    TrainConfig cfg = rig.trainCfg(4);
    cfg.checkpoint.dir = dir;
    cfg.checkpoint.every = 4;
    ClassifierTrainer trainer(rig.model, rig.task, cfg);
    trainer.train();
    const std::string good = dir + "/" + checkpointFileName(4);
    ASSERT_TRUE(fileExists(good));

    for (CorruptionMode mode : kAllCorruptionModes) {
        for (uint64_t seed = 1; seed <= 8; ++seed) {
            const std::string victim = dir + "/victim.dota";
            std::string bytes;
            ASSERT_TRUE(readFile(good, bytes));
            ASSERT_TRUE(writeFileAtomic(victim, bytes));
            Rng rng(seed);
            ASSERT_TRUE(corruptFile(victim, mode, rng))
                << corruptionModeName(mode);
            // The damaged file must differ from the original...
            std::string damaged;
            ASSERT_TRUE(readFile(victim, damaged));
            EXPECT_NE(damaged, bytes)
                << corruptionModeName(mode) << " seed " << seed;
            // ...and verification must never report it Ok.
            TrainingSnapshot snap;
            std::string error;
            const LoadStatus status =
                tryLoadTrainCheckpoint(victim, snap, &error);
            EXPECT_NE(status, LoadStatus::Ok)
                << corruptionModeName(mode) << " seed " << seed;
            EXPECT_FALSE(error.empty())
                << corruptionModeName(mode) << " seed " << seed;
        }
    }
}

TEST(TrainCheckpoint, ResumeLatestFallsBackPastCorruptFiles)
{
    const std::string dir = scratchDir("fallback");
    TrainRig rig;
    TrainConfig cfg = rig.trainCfg(6);
    cfg.checkpoint.dir = dir;
    cfg.checkpoint.every = 2;
    ClassifierTrainer trainer(rig.model, rig.task, cfg);
    trainer.train();
    ASSERT_EQ(listTrainCheckpoints(dir).size(), 3u);

    // Newest checkpoint verifies: resume picks it.
    TrainingSnapshot snap;
    ResumeResult res = resumeLatest(dir, snap);
    EXPECT_TRUE(res.resumed);
    EXPECT_EQ(res.path, dir + "/" + checkpointFileName(6));
    EXPECT_EQ(res.skipped_bad, 0u);
    EXPECT_EQ(snap.step, 6u);

    // Damage the newest two: resume falls back to the oldest good one.
    Rng rng(4);
    ASSERT_TRUE(corruptFile(dir + "/" + checkpointFileName(6),
                            CorruptionMode::BitFlip, rng));
    ASSERT_TRUE(corruptFile(dir + "/" + checkpointFileName(4),
                            CorruptionMode::Truncate, rng));
    res = resumeLatest(dir, snap);
    EXPECT_TRUE(res.resumed);
    EXPECT_EQ(res.path, dir + "/" + checkpointFileName(2));
    EXPECT_EQ(res.skipped_bad, 2u);
    EXPECT_EQ(res.diagnostics.size(), 2u);
    EXPECT_EQ(snap.step, 2u);

    // Damage everything: resume degrades to a fresh start, not a crash.
    ASSERT_TRUE(corruptFile(dir + "/" + checkpointFileName(2),
                            CorruptionMode::ZeroFill, rng));
    res = resumeLatest(dir, snap);
    EXPECT_FALSE(res.resumed);
    EXPECT_EQ(res.skipped_bad, 3u);

    // An empty directory is a fresh start too.
    const std::string nowhere = scratchDir("fallback_empty");
    res = resumeLatest(nowhere, snap);
    EXPECT_FALSE(res.resumed);
    EXPECT_EQ(res.skipped_bad, 0u);
}

TEST(TrainCheckpoint, RetentionKeepsOnlyNewest)
{
    const std::string dir = scratchDir("retention");
    TrainRig rig;
    TrainConfig cfg = rig.trainCfg(10);
    cfg.checkpoint.dir = dir;
    cfg.checkpoint.every = 2;
    cfg.checkpoint.keep_last = 2;
    ClassifierTrainer trainer(rig.model, rig.task, cfg);
    trainer.train();
    const std::vector<std::string> names = listTrainCheckpoints(dir);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], checkpointFileName(8));
    EXPECT_EQ(names[1], checkpointFileName(10));

    // keep_last = 0 never deletes the only copy.
    pruneCheckpoints(dir, 0);
    EXPECT_EQ(listTrainCheckpoints(dir).size(), 1u);
    EXPECT_EQ(listTrainCheckpoints(dir)[0], checkpointFileName(10));

    // Foreign files in the directory are ignored, not deleted.
    ASSERT_TRUE(writeFileAtomic(dir + "/notes.txt", "keep me"));
    ASSERT_TRUE(writeFileAtomic(dir + "/ckpt-junk.dota", "not numeric"));
    EXPECT_EQ(listTrainCheckpoints(dir).size(), 1u);
    pruneCheckpoints(dir, 1);
    EXPECT_TRUE(fileExists(dir + "/notes.txt"));
    EXPECT_TRUE(fileExists(dir + "/ckpt-junk.dota"));
}

TEST(TrainCheckpoint, AtomicWriteLeavesNoTempBehind)
{
    const std::string dir = scratchDir("atomic");
    const std::string path = dir + "/file.bin";
    ASSERT_TRUE(writeFileAtomic(path, "hello"));
    std::string back;
    ASSERT_TRUE(readFile(path, back));
    EXPECT_EQ(back, "hello");
    // Success leaves exactly the target file, no temp siblings.
    EXPECT_EQ(listFiles(dir).size(), 1u);

    // Failure (unwritable destination directory) reports an error and
    // leaves no debris.
    std::string error;
    EXPECT_FALSE(writeFileAtomic(dir + "/no/such/dir/file.bin", "x",
                                 &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(listFiles(dir).size(), 1u);
}

TEST(TrainCheckpoint, FileNamesParseAndSort)
{
    EXPECT_EQ(checkpointFileName(12), "ckpt-00000012.dota");
    const std::string dir = scratchDir("names");
    for (uint64_t step : {10u, 2u, 100u})
        ASSERT_TRUE(writeFileAtomic(
            dir + "/" + checkpointFileName(step), "x"));
    ASSERT_TRUE(writeFileAtomic(dir + "/ckpt-x.dota", "junk"));
    const std::vector<std::string> names = listTrainCheckpoints(dir);
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], checkpointFileName(2));
    EXPECT_EQ(names[1], checkpointFileName(10));
    EXPECT_EQ(names[2], checkpointFileName(100));
}

// ------------------------------------------------------------ guard rails

TEST(GuardRails, SkipsNonFiniteLossAndGradient)
{
    Parameter p("w", Matrix(2, 2));
    std::vector<Parameter *> params{&p};
    StepGuard guard(GuardRailConfig{});

    EXPECT_FALSE(guard.shouldSkip(1.0, params));
    EXPECT_EQ(guard.stats().skipped_steps, 0u);

    // Non-finite loss: skip, counted under nonfinite_loss_steps.
    EXPECT_TRUE(guard.shouldSkip(
        std::numeric_limits<double>::quiet_NaN(), params));
    EXPECT_EQ(guard.stats().nonfinite_loss_steps, 1u);
    EXPECT_EQ(guard.stats().skipped_steps, 1u);
    EXPECT_EQ(guard.stats().consecutive_skips, 1u);

    // Non-finite gradient: skip, counted under nonfinite_grad_steps.
    p.grad.data()[3] = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(guard.shouldSkip(0.5, params));
    EXPECT_EQ(guard.stats().nonfinite_grad_steps, 1u);
    EXPECT_EQ(guard.stats().skipped_steps, 2u);
    EXPECT_EQ(guard.stats().consecutive_skips, 2u);

    // A healthy step resets the streak but not the totals.
    p.grad.zero();
    EXPECT_FALSE(guard.shouldSkip(0.5, params));
    EXPECT_EQ(guard.stats().consecutive_skips, 0u);
    EXPECT_EQ(guard.stats().skipped_steps, 2u);

    // Disabled guard restores the historical unguarded behavior.
    GuardRailConfig off;
    off.enabled = false;
    StepGuard unguarded(off);
    EXPECT_FALSE(unguarded.shouldSkip(
        std::numeric_limits<double>::quiet_NaN(), params));
    EXPECT_EQ(unguarded.stats().skipped_steps, 0u);
}

TEST(GuardRails, ConsecutiveSkipLimitIsFatal)
{
    Parameter p("w", Matrix(1, 1));
    std::vector<Parameter *> params{&p};
    GuardRailConfig cfg;
    cfg.max_consecutive_skips = 3;
    StepGuard guard(cfg);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(guard.shouldSkip(nan, params));
    EXPECT_EXIT(guard.shouldSkip(nan, params),
                ::testing::ExitedWithCode(1), "consecutive");
}

TEST(GuardRails, ClipCounterTracksAdam)
{
    Parameter p("w", Matrix(2, 2));
    std::vector<Parameter *> params{&p};
    AdamConfig ac;
    ac.clip_norm = 1.0;
    Adam opt(params, ac);
    StepGuard guard(GuardRailConfig{});

    for (size_t i = 0; i < p.grad.size(); ++i)
        p.grad.data()[i] = 100.0f; // norm far above the clip
    opt.step();
    guard.afterStep(opt);
    EXPECT_TRUE(opt.lastStepClipped());
    EXPECT_EQ(guard.stats().clipped_steps, 1u);

    for (size_t i = 0; i < p.grad.size(); ++i)
        p.grad.data()[i] = 1e-4f;
    opt.step();
    guard.afterStep(opt);
    EXPECT_EQ(guard.stats().clipped_steps, 1u);
}

TEST(GuardRails, TrainerSkipsInjectedNaNStepAndRecovers)
{
    TrainRig rig;
    TrainConfig cfg = rig.trainCfg(6);
    ClassifierTrainer trainer(rig.model, rig.task, cfg);

    // Inject a NaN gradient at step 2 and capture parameter bytes
    // around it: the skipped step must leave every weight untouched.
    std::vector<Matrix> before_skip;
    std::vector<Matrix> after_skip;
    trainer.setGradCallback(
        [&](size_t step, const std::vector<Parameter *> &params) {
            if (step == 2) {
                for (const Parameter *p : params)
                    before_skip.push_back(p->value);
                params[0]->grad.data()[0] =
                    std::numeric_limits<float>::quiet_NaN();
            } else if (step == 3) {
                for (const Parameter *p : params)
                    after_skip.push_back(p->value);
            }
        });
    const double final_loss = trainer.train();

    EXPECT_EQ(trainer.guardStats().nonfinite_grad_steps, 1u);
    EXPECT_EQ(trainer.guardStats().skipped_steps, 1u);
    EXPECT_EQ(trainer.guardStats().consecutive_skips, 0u);
    EXPECT_TRUE(std::isfinite(final_loss));
    EXPECT_EQ(trainer.lossHistory().size(), 6u);
    ASSERT_EQ(before_skip.size(), after_skip.size());
    for (size_t i = 0; i < before_skip.size(); ++i)
        EXPECT_TRUE(bitsEqual(before_skip[i], after_skip[i]))
            << "parameter " << i << " changed across a skipped step";
}

} // namespace
} // namespace dota
