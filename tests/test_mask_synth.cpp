/**
 * @file
 * Tests for paper-scale synthetic attention-mask generation.
 */
#include <gtest/gtest.h>

#include "workloads/mask_synth.hpp"

namespace dota {
namespace {

TEST(MaskSynth, RowBalancedAtTargetRetention)
{
    Rng rng(121);
    MaskProfile p;
    p.retention = 0.1;
    const SparseMask m = synthesizeMask(256, p, rng);
    EXPECT_TRUE(m.rowBalanced());
    EXPECT_EQ(m.row(0).size(), 26u); // round(0.1 * 256)
    EXPECT_NEAR(m.density(), 0.1, 0.01);
}

TEST(MaskSynth, DiagonalAlwaysKept)
{
    Rng rng(122);
    MaskProfile p;
    p.retention = 0.05;
    const SparseMask m = synthesizeMask(200, p, rng);
    for (size_t r = 0; r < 200; ++r)
        EXPECT_TRUE(m.contains(r, static_cast<uint32_t>(r)));
}

TEST(MaskSynth, CausalRespectsTriangle)
{
    Rng rng(123);
    MaskProfile p;
    p.retention = 0.2;
    const SparseMask m = synthesizeMask(128, p, rng, /*causal=*/true);
    for (size_t r = 0; r < 128; ++r)
        for (uint32_t c : m.row(r))
            EXPECT_LE(c, r);
    // Early rows keep everything they can see.
    EXPECT_EQ(m.row(0).size(), 1u);
}

class MaskProfileKnobs : public ::testing::TestWithParam<double>
{};

TEST_P(MaskProfileKnobs, LocalFractionTracksKnob)
{
    const double frac = GetParam();
    Rng rng(124);
    MaskProfile p;
    p.retention = 0.08;
    p.frac_local = frac;
    p.frac_hub = 0.1;
    p.window = 16;
    const SparseMask m = synthesizeMask(512, p, rng);
    const MaskStats stats = measureMask(m, p.window);
    // Locality responds monotonically (diagonal adds a floor).
    EXPECT_GT(stats.local_fraction, 0.8 * frac);
}

INSTANTIATE_TEST_SUITE_P(Fracs, MaskProfileKnobs,
                         ::testing::Values(0.2, 0.4, 0.6));

TEST(MaskSynth, HubsConcentrateColumns)
{
    Rng rng(125);
    MaskProfile hubby;
    hubby.retention = 0.08;
    hubby.frac_hub = 0.5;
    hubby.frac_local = 0.1;
    hubby.hub_count = 8;
    MaskProfile flat = hubby;
    flat.frac_hub = 0.0;
    const MaskStats with_hubs =
        measureMask(synthesizeMask(512, hubby, rng));
    const MaskStats without =
        measureMask(synthesizeMask(512, flat, rng));
    EXPECT_GT(with_hubs.top_column_share, 2.0 * without.top_column_share);
}

TEST(MaskSynth, HubsImproveGroupReuse)
{
    Rng rng(126);
    MaskProfile hubby;
    hubby.retention = 0.1;
    hubby.frac_hub = 0.5;
    hubby.hub_count = 8;
    MaskProfile flat = hubby;
    flat.frac_hub = 0.0;
    flat.frac_local = 0.0;
    const MaskStats with_hubs =
        measureMask(synthesizeMask(512, hubby, rng));
    const MaskStats without =
        measureMask(synthesizeMask(512, flat, rng));
    EXPECT_GT(with_hubs.group_reuse, without.group_reuse);
    EXPECT_GE(without.group_reuse, 1.0); // reuse is at least 1 by def.
}

TEST(MaskSynth, ProfilesForAllBenchmarks)
{
    for (const Benchmark &b : allBenchmarks()) {
        const MaskProfile p = profileFor(b.id, 0.1);
        EXPECT_DOUBLE_EQ(p.retention, 0.1);
        EXPECT_GT(p.frac_local + p.frac_hub, 0.0);
        EXPECT_LE(p.frac_local + p.frac_hub, 1.0) << b.name;
    }
}

TEST(MaskSynth, FullRetentionIsDense)
{
    Rng rng(127);
    MaskProfile p;
    p.retention = 1.0;
    const SparseMask m = synthesizeMask(64, p, rng);
    EXPECT_EQ(m.nnz(), 64u * 64u);
}

TEST(MaskSynth, MeasureEmptyMaskSafe)
{
    const MaskStats stats = measureMask(SparseMask(0, 0));
    EXPECT_DOUBLE_EQ(stats.density, 0.0);
}

} // namespace
} // namespace dota
