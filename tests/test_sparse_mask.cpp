/**
 * @file
 * Unit tests for the SparseMask representation and edge cases of the
 * CSR sparse-attention kernels that consume it.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/sparse_mask.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/topk.hpp"

namespace dota {
namespace {

TEST(SparseMask, DenseRoundTrip)
{
    Rng rng(61);
    Matrix scores = Matrix::randomNormal(12, 12, rng);
    const Matrix dense = topkMask(scores, 3);
    const SparseMask sparse = SparseMask::fromDense(dense);
    EXPECT_EQ(sparse.nnz(), 36u);
    EXPECT_TRUE(Matrix::allClose(sparse.toDense(), dense));
}

TEST(SparseMask, SetRowSortsAndDedups)
{
    SparseMask m(2, 10);
    m.setRow(0, {5, 1, 5, 3});
    const auto &row = m.row(0);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], 1u);
    EXPECT_EQ(row[1], 3u);
    EXPECT_EQ(row[2], 5u);
}

TEST(SparseMask, AddConnectionThenSort)
{
    SparseMask m(1, 8);
    m.addConnection(0, 7);
    m.addConnection(0, 2);
    m.addConnection(0, 7);
    m.sortRows();
    ASSERT_EQ(m.row(0).size(), 2u);
    EXPECT_EQ(m.row(0)[0], 2u);
}

TEST(SparseMask, DensityAndBalance)
{
    SparseMask m(4, 10);
    for (size_t r = 0; r < 4; ++r)
        m.setRow(r, {0, static_cast<uint32_t>(r + 1)});
    EXPECT_DOUBLE_EQ(m.density(), 8.0 / 40.0);
    EXPECT_TRUE(m.rowBalanced());
    m.setRow(3, {1, 2, 3});
    EXPECT_FALSE(m.rowBalanced());
}

TEST(SparseMask, DistinctKeys)
{
    SparseMask m(3, 10);
    m.setRow(0, {1, 2});
    m.setRow(1, {2, 3});
    m.setRow(2, {3, 4});
    EXPECT_EQ(m.distinctKeys(), 4u);
}

TEST(SparseMask, Contains)
{
    SparseMask m(1, 100);
    m.setRow(0, {10, 50, 90});
    EXPECT_TRUE(m.contains(0, 50));
    EXPECT_FALSE(m.contains(0, 51));
}

TEST(SparseMask, EmptyMask)
{
    SparseMask m(5, 5);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
    EXPECT_TRUE(m.rowBalanced());
    EXPECT_EQ(m.distinctKeys(), 0u);
}

// --------------------------------------------- sparse-kernel edge cases

TEST(SparseKernels, EmptyRowsProduceZeroOutput)
{
    // A row that keeps nothing must yield a zero output row (the
    // all-masked convention of rowSoftmaxMasked), not NaN from 0/0.
    Rng rng(66);
    const size_t n = 9, d = 4;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    SparseMask m(n, n);
    for (size_t r = 0; r < n; ++r)
        if (r != 0 && r != 4)
            m.setRow(r, {static_cast<uint32_t>(r)});

    const Matrix out = sparseMaskedAttention(q, k, v, m, 0.5f);
    for (size_t c = 0; c < d; ++c) {
        EXPECT_EQ(out(0, c), 0.0f);
        EXPECT_EQ(out(4, c), 0.0f);
    }
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < d; ++c)
            EXPECT_TRUE(std::isfinite(out(r, c)));
}

TEST(SparseKernels, FullRetentionBitIdenticalToDenseSoftmax)
{
    // 100% retention: the CSR path must reproduce the dense masked
    // softmax bit-for-bit (the kernels share reduction contracts).
    Rng rng(67);
    const size_t n = 12, d = 8;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    SparseMask full(n, n);
    std::vector<uint32_t> all(n);
    for (size_t c = 0; c < n; ++c)
        all[c] = static_cast<uint32_t>(c);
    for (size_t r = 0; r < n; ++r)
        full.setRow(r, all);
    const float sc = 1.0f / std::sqrt(static_cast<float>(d));

    const Matrix sparse = sparseMaskedAttention(q, k, v, full, sc);
    const Matrix dense = matmul(
        rowSoftmaxMasked(scale(matmulBT(q, k), sc), full.toDense()), v);
    ASSERT_EQ(sparse.rows(), dense.rows());
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < d; ++c)
            EXPECT_EQ(sparse(r, c), dense(r, c))
                << "(" << r << ", " << c << ")";
}

TEST(SparseKernels, SingleTokenSequence)
{
    // n = 1: one query, one key, softmax over a single kept score.
    Rng rng(68);
    const Matrix q = Matrix::randomNormal(1, 6, rng);
    const Matrix k = Matrix::randomNormal(1, 6, rng);
    const Matrix v = Matrix::randomNormal(1, 6, rng);
    SparseMask m(1, 1);
    m.setRow(0, {0});
    const Matrix out = sparseMaskedAttention(q, k, v, m, 1.0f);
    // The lone probability is 1: output == value row.
    for (size_t c = 0; c < 6; ++c)
        EXPECT_NEAR(out(0, c), v(0, c), 1e-6f);
}

TEST(SparseKernels, SingleConnectionPerRowCopiesValues)
{
    // Each row keeps exactly one key: softmax collapses to 1 and the
    // output row must equal that key's value row.
    Rng rng(69);
    const size_t n = 7, d = 5;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    SparseMask m(n, n);
    for (size_t r = 0; r < n; ++r)
        m.setRow(r, {static_cast<uint32_t>((r + 3) % n)});
    const Matrix out = sparseMaskedAttention(q, k, v, m, 0.25f);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < d; ++c)
            EXPECT_NEAR(out(r, c), v((r + 3) % n, c), 1e-6f);
}

} // namespace
} // namespace dota
