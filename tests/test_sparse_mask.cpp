/**
 * @file
 * Unit tests for the SparseMask representation.
 */
#include <gtest/gtest.h>

#include "tensor/sparse_mask.hpp"
#include "tensor/topk.hpp"

namespace dota {
namespace {

TEST(SparseMask, DenseRoundTrip)
{
    Rng rng(61);
    Matrix scores = Matrix::randomNormal(12, 12, rng);
    const Matrix dense = topkMask(scores, 3);
    const SparseMask sparse = SparseMask::fromDense(dense);
    EXPECT_EQ(sparse.nnz(), 36u);
    EXPECT_TRUE(Matrix::allClose(sparse.toDense(), dense));
}

TEST(SparseMask, SetRowSortsAndDedups)
{
    SparseMask m(2, 10);
    m.setRow(0, {5, 1, 5, 3});
    const auto &row = m.row(0);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], 1u);
    EXPECT_EQ(row[1], 3u);
    EXPECT_EQ(row[2], 5u);
}

TEST(SparseMask, AddConnectionThenSort)
{
    SparseMask m(1, 8);
    m.addConnection(0, 7);
    m.addConnection(0, 2);
    m.addConnection(0, 7);
    m.sortRows();
    ASSERT_EQ(m.row(0).size(), 2u);
    EXPECT_EQ(m.row(0)[0], 2u);
}

TEST(SparseMask, DensityAndBalance)
{
    SparseMask m(4, 10);
    for (size_t r = 0; r < 4; ++r)
        m.setRow(r, {0, static_cast<uint32_t>(r + 1)});
    EXPECT_DOUBLE_EQ(m.density(), 8.0 / 40.0);
    EXPECT_TRUE(m.rowBalanced());
    m.setRow(3, {1, 2, 3});
    EXPECT_FALSE(m.rowBalanced());
}

TEST(SparseMask, DistinctKeys)
{
    SparseMask m(3, 10);
    m.setRow(0, {1, 2});
    m.setRow(1, {2, 3});
    m.setRow(2, {3, 4});
    EXPECT_EQ(m.distinctKeys(), 4u);
}

TEST(SparseMask, Contains)
{
    SparseMask m(1, 100);
    m.setRow(0, {10, 50, 90});
    EXPECT_TRUE(m.contains(0, 50));
    EXPECT_FALSE(m.contains(0, 51));
}

TEST(SparseMask, EmptyMask)
{
    SparseMask m(5, 5);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
    EXPECT_TRUE(m.rowBalanced());
    EXPECT_EQ(m.distinctKeys(), 0u);
}

} // namespace
} // namespace dota
