/**
 * @file
 * Tests for the online serving simulator (src/serve/): trace
 * generation, fault-plan parsing and materialization, the robust
 * dispatch policy (retries, circuit breaker, shedding, degradation),
 * and the chaos conservation invariants — every request reaches exactly
 * one terminal state and no request is served by a dead device.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serve/dispatcher.hpp"
#include "serve/fault.hpp"
#include "serve/simulator.hpp"
#include "serve/trace.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

using test::smallFleet;
using test::smallTrace;

// ---------------------------------------------------------------- trace

TEST(ServeTrace, DeterministicAndSorted)
{
    const TraceConfig tc = smallTrace(100);
    const RequestTrace a = generateTrace(tc);
    const RequestTrace b = generateTrace(tc);
    ASSERT_EQ(a.requests.size(), 100u);
    for (size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrival_ms, b.requests[i].arrival_ms);
        EXPECT_EQ(a.requests[i].seq_len, b.requests[i].seq_len);
        if (i > 0) {
            EXPECT_GE(a.requests[i].arrival_ms,
                      a.requests[i - 1].arrival_ms);
        }
        EXPECT_GE(a.requests[i].seq_len, tc.len_min);
        EXPECT_LE(a.requests[i].seq_len, tc.len_max);
        EXPECT_EQ(a.requests[i].seq_len % tc.len_round, 0u);
        EXPECT_EQ(a.requests[i].id, i);
    }
    TraceConfig other = tc;
    other.seed = 12;
    const RequestTrace c = generateTrace(other);
    EXPECT_NE(a.requests[0].arrival_ms, c.requests[0].arrival_ms);
}

TEST(ServeTrace, MeanRateRoughlyMatches)
{
    TraceConfig tc = smallTrace(2000, 250.0);
    const RequestTrace t = generateTrace(tc);
    const double elapsed_s = t.horizonMs() * 1e-3;
    const double rate = static_cast<double>(t.requests.size()) /
                        elapsed_s;
    EXPECT_NEAR(rate, 250.0, 25.0); // ~10% for 2000 samples
}

TEST(ServeTrace, DeadlinesAndProcesses)
{
    TraceConfig tc = smallTrace(50);
    tc.deadline_ms = 75.0;
    for (ArrivalProcess p : {ArrivalProcess::Poisson,
                             ArrivalProcess::Burst,
                             ArrivalProcess::Diurnal}) {
        tc.process = p;
        const RequestTrace t = generateTrace(tc);
        ASSERT_EQ(t.requests.size(), 50u) << arrivalProcessName(p);
        for (const Request &r : t.requests)
            EXPECT_DOUBLE_EQ(r.deadline_ms, r.arrival_ms + 75.0);
    }
    tc.deadline_ms = 0.0;
    const RequestTrace t = generateTrace(tc);
    EXPECT_TRUE(std::isinf(t.requests[0].deadline_ms));
}

TEST(ServeTrace, BurstCompressesInterarrivals)
{
    // The burst process at 8x should pack the same request count into
    // less virtual time than plain Poisson with the same seed.
    TraceConfig poisson = smallTrace(400, 100.0);
    TraceConfig burst = poisson;
    burst.process = ArrivalProcess::Burst;
    burst.burst_multiplier = 8.0;
    EXPECT_LT(generateTrace(burst).horizonMs(),
              generateTrace(poisson).horizonMs());
}

// ---------------------------------------------------------------- fault

TEST(ServeFault, ParsePlanRoundTrip)
{
    const FaultPlan plan = parseFaultPlan(
        "kill:0@120, revive:0@400, slow:2@100-300x4, transient:0.05,"
        "mtbf:5000x250");
    ASSERT_EQ(plan.events.size(), 4u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::Kill);
    EXPECT_EQ(plan.events[0].device, 0u);
    EXPECT_DOUBLE_EQ(plan.events[0].t_ms, 120.0);
    EXPECT_EQ(plan.events[1].kind, FaultKind::Revive);
    EXPECT_EQ(plan.events[2].kind, FaultKind::SlowStart);
    EXPECT_DOUBLE_EQ(plan.events[2].factor, 4.0);
    EXPECT_EQ(plan.events[3].kind, FaultKind::SlowEnd);
    EXPECT_DOUBLE_EQ(plan.events[3].t_ms, 300.0);
    EXPECT_DOUBLE_EQ(plan.transient_prob, 0.05);
    EXPECT_DOUBLE_EQ(plan.mtbf_ms, 5000.0);
    EXPECT_DOUBLE_EQ(plan.repair_ms, 250.0);
    EXPECT_EQ(parseFaultPlan("").events.size(), 0u);
}

TEST(ServeFault, TryParseRejectsMalformedPlans)
{
    // Every malformed spec yields ok=false with a diagnostic that names
    // the offending token — never a crash, never a half-built plan.
    const char *bad[] = {
        "bogus:1@2",            // unknown verb
        "kill",                 // no colon
        "kill:@100",            // empty device
        "kill:x@100",           // non-numeric device
        "kill:0",               // missing @<ms>
        "kill:0@abc",           // junk time
        "kill:0@-5",            // negative time
        "slow:0@100",           // incomplete slow spec
        "slow:0@300-100x2",     // t1 <= t0
        "slow:0@100-300x0.5",   // factor < 1
        "transient:1.5",        // probability > 1
        "transient:nan",        // non-finite
        "mtbf:5000",            // missing x<repair>
    };
    for (const char *spec : bad) {
        const FaultPlanParse res = tryParseFaultPlan(spec);
        EXPECT_FALSE(res.ok) << spec;
        EXPECT_FALSE(res.error.empty()) << spec;
    }
}

TEST(ServeFault, TryParseAcceptsGoodPlans)
{
    const FaultPlanParse res =
        tryParseFaultPlan("kill:1@50,slow:0@10-20x2,transient:0.5");
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.error.empty());
    EXPECT_EQ(res.plan.events.size(), 3u);
    EXPECT_DOUBLE_EQ(res.plan.transient_prob, 0.5);
    // Whitespace and empty tokens are tolerated.
    EXPECT_TRUE(tryParseFaultPlan("  ").ok);
    EXPECT_TRUE(tryParseFaultPlan(",,kill:0@1,,").ok);
    // The grammar help text mentions every verb.
    const std::string g = faultPlanGrammar();
    for (const char *verb :
         {"kill", "revive", "slow", "transient", "mtbf"})
        EXPECT_NE(g.find(verb), std::string::npos) << verb;
}

TEST(ServeFault, ParseFatalOnBadPlan)
{
    EXPECT_EXIT(parseFaultPlan("bogus:1@2"),
                ::testing::ExitedWithCode(1), "unknown fault-plan verb");
}

TEST(ServeFault, InjectorSortsAndValidates)
{
    FaultPlan plan;
    plan.events = {{300.0, 1, FaultKind::Revive, 1.0},
                   {100.0, 1, FaultKind::Kill, 1.0},
                   {100.0, 0, FaultKind::Kill, 1.0}};
    const FaultInjector inj(plan, 2, 1000.0, 5);
    ASSERT_EQ(inj.schedule().size(), 3u);
    EXPECT_EQ(inj.schedule()[0].device, 0u);
    EXPECT_EQ(inj.schedule()[1].device, 1u);
    EXPECT_DOUBLE_EQ(inj.schedule()[2].t_ms, 300.0);
}

TEST(ServeFault, SameInstantSameDeviceTieBreakIsKindOrder)
{
    // Two verbs striking one device at the same millisecond resolve by
    // FaultKind enum order (kill < revive < slow < corrupt < drain),
    // NOT by their order in the plan string — so the two spellings
    // below materialize the identical schedule.
    const FaultPlan fwd = parseFaultPlan("kill:0@500,drain:0@500");
    const FaultPlan rev = parseFaultPlan("drain:0@500,kill:0@500");
    const FaultInjector a(fwd, 1, 1000.0, 5);
    const FaultInjector b(rev, 1, 1000.0, 5);
    ASSERT_EQ(a.schedule().size(), 2u);
    ASSERT_EQ(b.schedule().size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
        EXPECT_EQ(a.schedule()[i].device, b.schedule()[i].device);
        EXPECT_DOUBLE_EQ(a.schedule()[i].t_ms, b.schedule()[i].t_ms);
    }
    // The harsher fault resolves first: the kill wins, the drain finds
    // the device already dead and is a no-op.
    EXPECT_EQ(a.schedule()[0].kind, FaultKind::Kill);
    EXPECT_EQ(a.schedule()[1].kind, FaultKind::Drain);

    // Same-kind ties (two slow-starts) fall through to the factor.
    FaultPlan slow;
    slow.events = {{100.0, 0, FaultKind::SlowStart, 4.0},
                   {100.0, 0, FaultKind::SlowStart, 2.0}};
    const FaultInjector s(slow, 1, 1000.0, 5);
    ASSERT_EQ(s.schedule().size(), 2u);
    EXPECT_DOUBLE_EQ(s.schedule()[0].factor, 2.0);
    EXPECT_DOUBLE_EQ(s.schedule()[1].factor, 4.0);

    // Corrupt-then-drain at one instant: the poison lands before the
    // evacuation starts, so verify-on-arrival is what must catch it.
    const FaultPlan cd = parseFaultPlan("drain:1@30,corrupt:1@30");
    const FaultInjector c(cd, 2, 1000.0, 5);
    ASSERT_EQ(c.schedule().size(), 2u);
    EXPECT_EQ(c.schedule()[0].kind, FaultKind::Corrupt);
    EXPECT_EQ(c.schedule()[1].kind, FaultKind::Drain);
}

TEST(ServeFault, DrainVerbParsesAndRejectsMalformed)
{
    const FaultPlanParse ok = tryParseFaultPlan("drain:2@750");
    ASSERT_TRUE(ok.ok) << ok.error;
    ASSERT_EQ(ok.plan.events.size(), 1u);
    EXPECT_EQ(ok.plan.events[0].kind, FaultKind::Drain);
    EXPECT_EQ(ok.plan.events[0].device, 2u);
    EXPECT_DOUBLE_EQ(ok.plan.events[0].t_ms, 750.0);
    EXPECT_NE(describeFaultPlan(ok.plan).find("drain:2@750"),
              std::string::npos);
    EXPECT_NE(faultPlanGrammar().find("drain"), std::string::npos);
    for (const char *bad : {"drain:0", "drain:@5", "drain:0@",
                            "drain:0@-5", "drain:x@5"})
        EXPECT_FALSE(tryParseFaultPlan(bad).ok) << bad;
}

TEST(ServeReportTest, PercentileOfEmptySampleIsZero)
{
    // A run with zero recoveries/migrations still asks for its
    // percentiles — the guard returns 0 instead of indexing an empty
    // vector or dividing into NaN.
    const std::vector<double> none;
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(percentileSorted(none, q), 0.0) << q;
    const std::vector<double> one{3.5};
    EXPECT_EQ(percentileSorted(one, 0.0), 3.5);
    EXPECT_EQ(percentileSorted(one, 1.0), 3.5);
}

TEST(ServeFault, RandomMtbfDeterministicPerSeed)
{
    FaultPlan plan;
    plan.mtbf_ms = 200.0;
    plan.repair_ms = 50.0;
    const FaultInjector a(plan, 4, 2000.0, 77);
    const FaultInjector b(plan, 4, 2000.0, 77);
    const FaultInjector c(plan, 4, 2000.0, 78);
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    EXPECT_GT(a.schedule().size(), 0u);
    for (size_t i = 0; i < a.schedule().size(); ++i) {
        EXPECT_EQ(a.schedule()[i].t_ms, b.schedule()[i].t_ms);
        EXPECT_EQ(a.schedule()[i].device, b.schedule()[i].device);
        EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
    }
    bool differs = a.schedule().size() != c.schedule().size();
    for (size_t i = 0; !differs && i < a.schedule().size(); ++i)
        differs = a.schedule()[i].t_ms != c.schedule()[i].t_ms;
    EXPECT_TRUE(differs);
    // Kills alternate with revivals per device, and kills stay inside
    // the horizon.
    for (const FaultEvent &ev : a.schedule())
        if (ev.kind == FaultKind::Kill) {
            EXPECT_LT(ev.t_ms, 2000.0);
        }
}

// ----------------------------------------------------------- dispatcher

TEST(ServeDispatcher, BackoffIsCappedExponential)
{
    ServePolicy policy;
    policy.backoff_ms = 2.0;
    policy.backoff_cap_ms = 10.0;
    RobustDispatcher disp(policy, 1);
    EXPECT_DOUBLE_EQ(disp.backoffMs(1), 2.0);
    EXPECT_DOUBLE_EQ(disp.backoffMs(2), 4.0);
    EXPECT_DOUBLE_EQ(disp.backoffMs(3), 8.0);
    EXPECT_DOUBLE_EQ(disp.backoffMs(4), 10.0);
    EXPECT_DOUBLE_EQ(disp.backoffMs(20), 10.0);
}

TEST(ServeDispatcher, BreakerTripsAfterConsecutiveFailures)
{
    ServePolicy policy;
    policy.breaker_threshold = 3;
    policy.breaker_cooldown_ms = 100.0;
    RobustDispatcher disp(policy, 2);
    EXPECT_FALSE(disp.onFailure(0, 10.0));
    EXPECT_FALSE(disp.onFailure(0, 11.0));
    EXPECT_TRUE(disp.onFailure(0, 12.0)); // third in a row trips
    EXPECT_TRUE(disp.breakerOpen(0, 50.0));
    EXPECT_FALSE(disp.breakerOpen(0, 112.0));
    EXPECT_FALSE(disp.breakerOpen(1, 50.0)); // per-device state
    EXPECT_EQ(disp.breakerTrips(0), 1u);
    // A success resets the streak.
    EXPECT_FALSE(disp.onFailure(1, 10.0));
    EXPECT_FALSE(disp.onFailure(1, 11.0));
    disp.onSuccess(1);
    EXPECT_FALSE(disp.onFailure(1, 12.0));
}

TEST(ServeDispatcher, QueueBoundAndOrdering)
{
    ServePolicy policy;
    policy.queue_limit = 2;
    RobustDispatcher disp(policy, 1);
    QueuedJob a{{0, 5.0, 128,
                 std::numeric_limits<double>::infinity()}, 0};
    QueuedJob b{{1, 3.0, 128,
                 std::numeric_limits<double>::infinity()}, 0};
    QueuedJob c{{2, 9.0, 128,
                 std::numeric_limits<double>::infinity()}, 0};
    EXPECT_TRUE(disp.admit(a, false));
    EXPECT_TRUE(disp.admit(b, false));
    EXPECT_FALSE(disp.admit(c, false));  // over the bound: shed
    EXPECT_TRUE(disp.admit(c, true));    // retries are always admitted
    EXPECT_EQ(disp.queueDepth(), 3u);
    EXPECT_EQ(disp.pop().req.id, 1u);    // earliest arrival first
    EXPECT_EQ(disp.pop().req.id, 0u);
    EXPECT_EQ(disp.pop().req.id, 2u);
}

TEST(ServeDispatcher, DegradeLevelFollowsPressure)
{
    ServePolicy policy;
    policy.degrade_depth_1 = 4.0;
    policy.degrade_depth_2 = 8.0;
    RobustDispatcher disp(policy, 4);
    EXPECT_EQ(disp.degradeLevel(0, 4), 0u);
    EXPECT_EQ(disp.degradeLevel(15, 4), 0u);
    EXPECT_EQ(disp.degradeLevel(16, 4), 1u);
    EXPECT_EQ(disp.degradeLevel(32, 4), 2u);
    EXPECT_EQ(disp.degradeLevel(16, 2), 2u); // capacity loss degrades
    policy.degradation = false;
    RobustDispatcher off(policy, 4);
    EXPECT_EQ(off.degradeLevel(100, 1), 0u);
}

// ------------------------------------------------------------ simulator

TEST(ServeSim, HealthyRunCompletesEverything)
{
    const RequestTrace trace = generateTrace(smallTrace());
    ServingSimulator sim(smallFleet(), benchmark(BenchmarkId::Text));
    const ServeReport r = sim.run(trace);
    EXPECT_EQ(r.requests, trace.requests.size());
    EXPECT_EQ(r.completed, trace.requests.size());
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.shed(), 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_GT(r.p50_ms, 0.0);
    EXPECT_LE(r.p50_ms, r.p95_ms);
    EXPECT_LE(r.p95_ms, r.p99_ms);
    EXPECT_LE(r.p99_ms, r.max_latency_ms);
    EXPECT_GT(r.goodput_seq_s, 0.0);
    EXPECT_GT(r.total_energy_j, 0.0);
    for (const DeviceServeStats &d : r.devices)
        EXPECT_TRUE(d.down_intervals.empty());
    // Every outcome is a completion with a served device and level 0
    // retention bookkeeping.
    for (const RequestOutcome &out : r.outcomes) {
        EXPECT_EQ(out.status, RequestStatus::Completed);
        EXPECT_GE(out.device, 0);
        EXPECT_EQ(out.attempts, 1u);
        EXPECT_GE(out.finish_ms, out.arrival_ms);
    }
}

TEST(ServeSim, ConservationUnderChaos)
{
    // Kill half the fleet mid-trace (one device revives), add
    // stragglers and transient errors: every request must still reach
    // exactly one terminal state.
    TraceConfig tc = smallTrace(150, 600.0);
    tc.deadline_ms = 120.0;
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(4);
    sc.policy.timeout_ms = 50.0;
    sc.policy.max_retries = 2;
    sc.policy.queue_limit = 64;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const FaultPlan plan = parseFaultPlan(
        "kill:0@40,kill:1@60,revive:0@200,slow:2@30-150x5,"
        "transient:0.1");
    const ServeReport r = sim.run(trace, plan, 123);
    EXPECT_EQ(r.requests, trace.requests.size());
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
    EXPECT_GT(r.failovers + r.retries, 0u);
    // Outcome statuses agree with the counters.
    size_t completed = 0, shed = 0, failed = 0;
    for (const RequestOutcome &out : r.outcomes) {
        switch (out.status) {
          case RequestStatus::Completed:
            ++completed;
            break;
          case RequestStatus::Failed:
            ++failed;
            break;
          default:
            ++shed;
        }
    }
    EXPECT_EQ(completed, r.completed);
    EXPECT_EQ(shed, r.shed());
    EXPECT_EQ(failed, r.failed);
}

TEST(ServeSim, NoServiceDuringDeadIntervals)
{
    TraceConfig tc = smallTrace(120, 500.0);
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(3);
    sc.policy.max_retries = 3;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const FaultPlan plan = parseFaultPlan(
        "kill:0@20,revive:0@120,kill:1@50,revive:1@90,kill:0@200,"
        "revive:0@260");
    const ServeReport r = sim.run(trace, plan, 9);
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
    // No completed attempt's service span may intersect a down
    // interval of its device.
    for (const RequestOutcome &out : r.outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        const DeviceServeStats &dev = r.devices[out.device];
        for (const auto &[down, up] : dev.down_intervals) {
            const bool overlaps =
                out.finish_ms > down + 1e-12 &&
                out.dispatch_ms < up - 1e-12;
            EXPECT_FALSE(overlaps)
                << "request " << out.id << " served on device "
                << out.device << " during [" << down << ", " << up
                << ")";
        }
    }
}

TEST(ServeSim, AllDeadMeansNoCompletions)
{
    const RequestTrace trace = generateTrace(smallTrace(20));
    ServingSimulator sim(smallFleet(2), benchmark(BenchmarkId::Text));
    const ServeReport r = sim.run(trace,
                                  parseFaultPlan("kill:0@0,kill:1@0"));
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.shed_starved, 20u);
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
}

TEST(ServeSim, TransientErrorsExhaustRetries)
{
    FaultPlan plan;
    plan.transient_prob = 1.0; // every attempt fails
    const RequestTrace trace = generateTrace(smallTrace(15, 100.0));
    ServeConfig sc = smallFleet(2);
    sc.policy.max_retries = 2;
    sc.policy.breaker_threshold = 4;
    sc.policy.breaker_cooldown_ms = 10.0;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const ServeReport r = sim.run(trace, plan, 3);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, 15u);
    EXPECT_EQ(r.retries, 15u * 2);
    EXPECT_EQ(r.transient_errors, 15u * 3);
    EXPECT_GT(r.breaker_trips, 0u);
    for (const RequestOutcome &out : r.outcomes)
        EXPECT_EQ(out.attempts, 3u);
}

TEST(ServeSim, TimeoutsFailLongRequests)
{
    // A timeout below the service time of the longest requests forces
    // timeout failures (and eventually terminal failure, since every
    // attempt times out again).
    TraceConfig tc = smallTrace(10, 50.0);
    tc.len_min = 4096;
    tc.len_max = 4096;
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(2);
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const double service = sim.serviceMs(0, 0, 4096);
    sc.policy.timeout_ms = service * 0.5;
    sc.policy.max_retries = 1;
    ServingSimulator strict(sc, benchmark(BenchmarkId::Text));
    const ServeReport r = strict.run(trace);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, 10u);
    EXPECT_EQ(r.timeouts, 20u); // first attempt + one retry each
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
}

TEST(ServeSim, OverloadShedsAtQueueBound)
{
    TraceConfig tc = smallTrace(80, 5000.0); // far beyond capacity
    tc.len_min = 2048;
    tc.len_max = 2048; // one length keeps cache warming cheap
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(1);
    sc.policy.queue_limit = 4;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const ServeReport r = sim.run(trace);
    EXPECT_GT(r.shed_queue_full, 0u);
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
    for (const RequestOutcome &out : r.outcomes)
        if (out.status == RequestStatus::ShedQueueFull) {
            EXPECT_EQ(out.attempts, 0u);
        }
}

TEST(ServeSim, MaxQueueAgeSheds)
{
    TraceConfig tc = smallTrace(60, 4000.0);
    tc.len_min = 2048;
    tc.len_max = 2048;
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(1);
    sc.policy.queue_limit = 0; // unbounded depth, age does the shedding
    sc.policy.max_queue_age_ms = 30.0;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const ServeReport r = sim.run(trace);
    EXPECT_GT(r.shed_expired, 0u);
    EXPECT_EQ(r.completed + r.shed() + r.failed, r.requests);
}

TEST(ServeSim, DegradationLadderKicksInUnderPressure)
{
    // DOTA-F fleet under heavy overload with tight degrade thresholds:
    // some requests must be served at deeper ladder levels with lower
    // retention, and the served-retention bookkeeping must match.
    TraceConfig tc = smallTrace(100, 4000.0);
    tc.len_min = 1024;
    tc.len_max = 2048;
    const RequestTrace trace = generateTrace(tc);
    ServeConfig sc = smallFleet(2);
    sc.mode = DotaMode::Full;
    sc.policy.queue_limit = 0;
    sc.policy.degrade_depth_1 = 1.0;
    sc.policy.degrade_depth_2 = 3.0;
    const Benchmark &bench = benchmark(BenchmarkId::Text);
    ServingSimulator sim(sc, bench);
    ASSERT_EQ(sim.ladderDepth(0), 3u);
    EXPECT_EQ(sim.deviceName(0, 0), "DOTA-F");
    EXPECT_EQ(sim.deviceName(0, 2), "DOTA-A");
    // Deeper levels keep less attention, so they serve faster.
    EXPECT_LT(sim.serviceMs(0, 2, 2048), sim.serviceMs(0, 0, 2048));
    const ServeReport r = sim.run(trace);
    EXPECT_EQ(r.completed, r.requests);
    ASSERT_EQ(r.completed_by_level.size(), 3u);
    EXPECT_GT(r.completed_by_level[1] + r.completed_by_level[2], 0u);
    EXPECT_LT(r.mean_retention, 1.0);
    double retention_sum = 0.0;
    for (const RequestOutcome &out : r.outcomes) {
        EXPECT_DOUBLE_EQ(
            out.retention,
            modeRetention(bench,
                          out.level == 0
                              ? DotaMode::Full
                              : out.level == 1
                                    ? DotaMode::Conservative
                                    : DotaMode::Aggressive));
        retention_sum += out.retention;
    }
    EXPECT_NEAR(r.mean_retention,
                retention_sum / double(r.completed), 1e-12);
}

TEST(ServeSim, NonDotaDevicesHaveNoLadder)
{
    ServeConfig sc;
    sc.devices = {DeviceSpec{"gpu-v100", 1, 1.0, DeviceOptions{}},
                  DeviceSpec{"dota-c", 1, 1.0, DeviceOptions{}}};
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    EXPECT_EQ(sim.ladderDepth(0), 1u);
    EXPECT_EQ(sim.ladderDepth(1), 2u); // dota-c can still go to dota-a
    EXPECT_EQ(sim.deviceName(0, 2), "GPU-V100"); // clamped
    EXPECT_DOUBLE_EQ(sim.retention(0, 2), 1.0);
}

TEST(ServeSim, StragglerSlowsOnlyItsInterval)
{
    // One device straggling at 100x for the whole run: dispatch routes
    // around it, so completions should concentrate on the healthy one.
    TraceConfig tc = smallTrace(30, 200.0);
    const RequestTrace trace = generateTrace(tc);
    ServingSimulator sim(smallFleet(2), benchmark(BenchmarkId::Text));
    const ServeReport r =
        sim.run(trace, parseFaultPlan("slow:0@0-100000x100"));
    EXPECT_EQ(r.completed, r.requests);
    EXPECT_GT(r.devices[1].completed, r.devices[0].completed);
}

} // namespace
} // namespace dota
