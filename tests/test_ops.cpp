/**
 * @file
 * Unit tests for the dense kernels (forward semantics).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"

namespace dota {
namespace {

Matrix
m22(float a, float b, float c, float d)
{
    return Matrix(2, 2, std::vector<float>{a, b, c, d});
}

TEST(Ops, MatmulKnown)
{
    const Matrix a = m22(1, 2, 3, 4);
    const Matrix b = m22(5, 6, 7, 8);
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, MatmulIdentity)
{
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(5, 5, rng);
    EXPECT_TRUE(Matrix::allClose(matmul(a, Matrix::identity(5)), a));
    EXPECT_TRUE(Matrix::allClose(matmul(Matrix::identity(5), a), a));
}

TEST(Ops, MatmulVariantsAgree)
{
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(4, 6, rng);
    const Matrix b = Matrix::randomNormal(6, 3, rng);
    const Matrix ref = matmul(a, b);
    EXPECT_TRUE(Matrix::allClose(matmulBT(a, transpose(b)), ref, 1e-4));
    EXPECT_TRUE(Matrix::allClose(matmulAT(transpose(a), b), ref, 1e-4));
}

TEST(Ops, TransposeInvolution)
{
    Rng rng(3);
    const Matrix a = Matrix::randomNormal(3, 7, rng);
    EXPECT_TRUE(Matrix::allClose(transpose(transpose(a)), a));
}

TEST(Ops, Elementwise)
{
    const Matrix a = m22(1, 2, 3, 4);
    const Matrix b = m22(5, 6, 7, 8);
    EXPECT_FLOAT_EQ(add(a, b)(1, 1), 12.0f);
    EXPECT_FLOAT_EQ(sub(b, a)(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(hadamard(a, b)(1, 0), 21.0f);
    EXPECT_FLOAT_EQ(scale(a, 0.5f)(0, 1), 1.0f);
}

TEST(Ops, AddRowBroadcast)
{
    const Matrix a = m22(1, 2, 3, 4);
    const Matrix bias(1, 2, std::vector<float>{10, 20});
    const Matrix c = addRowBroadcast(a, bias);
    EXPECT_FLOAT_EQ(c(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 24.0f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(4);
    const Matrix x = Matrix::randomNormal(6, 9, rng, 0.0f, 3.0f);
    const Matrix y = rowSoftmax(x);
    for (size_t r = 0; r < y.rows(); ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < y.cols(); ++c) {
            sum += y(r, c);
            EXPECT_GT(y(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxShiftInvariant)
{
    Rng rng(5);
    const Matrix x = Matrix::randomNormal(3, 5, rng);
    Matrix shifted = x;
    for (size_t i = 0; i < shifted.size(); ++i)
        shifted.data()[i] += 100.0f;
    EXPECT_TRUE(Matrix::allClose(rowSoftmax(x), rowSoftmax(shifted),
                                 1e-5));
}

TEST(Ops, MaskedSoftmaxZeroesOmitted)
{
    const Matrix x(1, 4, std::vector<float>{1, 2, 3, 4});
    Matrix mask(1, 4);
    mask(0, 1) = 1.0f;
    mask(0, 3) = 1.0f;
    const Matrix y = rowSoftmaxMasked(x, mask);
    EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y(0, 2), 0.0f);
    EXPECT_NEAR(y(0, 1) + y(0, 3), 1.0, 1e-6);
    // Kept entries renormalize: exp(2)/(exp(2)+exp(4)).
    EXPECT_NEAR(y(0, 1), std::exp(2.0) / (std::exp(2.0) + std::exp(4.0)),
                1e-6);
}

TEST(Ops, MaskedSoftmaxEmptyRowStaysZero)
{
    const Matrix x(2, 3, 1.0f);
    Matrix mask(2, 3);
    mask(0, 0) = 1.0f; // row 1 fully masked
    const Matrix y = rowSoftmaxMasked(x, mask);
    EXPECT_FLOAT_EQ(y(0, 0), 1.0f);
    for (size_t c = 0; c < 3; ++c)
        EXPECT_FLOAT_EQ(y(1, c), 0.0f);
}

TEST(Ops, MaskedSoftmaxFullMaskEqualsDense)
{
    Rng rng(6);
    const Matrix x = Matrix::randomNormal(4, 6, rng);
    const Matrix ones(4, 6, 1.0f);
    EXPECT_TRUE(
        Matrix::allClose(rowSoftmaxMasked(x, ones), rowSoftmax(x), 1e-6));
}

TEST(Ops, ReluAndGelu)
{
    const Matrix x(1, 4, std::vector<float>{-2, -0.5, 0.5, 2});
    const Matrix r = relu(x);
    EXPECT_FLOAT_EQ(r(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(r(0, 3), 2.0f);
    const Matrix g = gelu(x);
    EXPECT_NEAR(g(0, 3), 1.954, 5e-3); // gelu(2)
    EXPECT_NEAR(g(0, 0), -0.0455, 5e-3);
    EXPECT_LT(g(0, 1), 0.0f);
}

TEST(Ops, LayerNormStats)
{
    Rng rng(7);
    const Matrix x = Matrix::randomNormal(5, 32, rng, 3.0f, 2.0f);
    const Matrix gamma(1, 32, 1.0f);
    const Matrix beta(1, 32, 0.0f);
    Matrix mean, rstd;
    const Matrix y = layerNorm(x, gamma, beta, mean, rstd);
    for (size_t r = 0; r < y.rows(); ++r) {
        double mu = 0.0, var = 0.0;
        for (size_t c = 0; c < y.cols(); ++c)
            mu += y(r, c);
        mu /= y.cols();
        for (size_t c = 0; c < y.cols(); ++c)
            var += (y(r, c) - mu) * (y(r, c) - mu);
        var /= y.cols();
        EXPECT_NEAR(mu, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Ops, LayerNormGammaBeta)
{
    const Matrix x(1, 4, std::vector<float>{1, 2, 3, 4});
    const Matrix gamma(1, 4, 2.0f);
    const Matrix beta(1, 4, 5.0f);
    Matrix mean, rstd;
    const Matrix y = layerNorm(x, gamma, beta, mean, rstd);
    double sum = 0.0;
    for (size_t c = 0; c < 4; ++c)
        sum += y(0, c);
    EXPECT_NEAR(sum / 4.0, 5.0, 1e-5); // beta shifts the mean
}

TEST(Ops, Mse)
{
    const Matrix a(1, 2, std::vector<float>{0, 0});
    const Matrix b(1, 2, std::vector<float>{3, 4});
    EXPECT_DOUBLE_EQ(mse(a, b), 12.5);
}

TEST(Ops, GemmMacs)
{
    EXPECT_EQ(gemmMacs(2, 3, 4), 24u);
}

TEST(Ops, MatmulPropagatesNonFiniteOperands)
{
    // Regression: the scalar kernels used to skip zero multiplicands,
    // silently turning 0 * Inf (= NaN per IEEE 754) into 0. The
    // vectorized kernels must propagate non-finite values faithfully.
    const float inf = std::numeric_limits<float>::infinity();
    const Matrix a(1, 2, std::vector<float>{0.0f, 1.0f});
    const Matrix b(2, 2, std::vector<float>{inf, 2.0f, 3.0f, 4.0f});

    const Matrix c = matmul(a, b); // c00 = 0*Inf + 1*3 -> NaN
    EXPECT_TRUE(std::isnan(c(0, 0)));
    EXPECT_FLOAT_EQ(c(0, 1), 4.0f);

    // Same contract for the A^T variant (and its zero-skip removal).
    const Matrix at(2, 1, std::vector<float>{0.0f, 1.0f});
    const Matrix cat = matmulAT(at, b); // c00 = 0*Inf + 1*3 -> NaN
    EXPECT_TRUE(std::isnan(cat(0, 0)));

    // NaN inputs survive every variant.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const Matrix an(1, 2, std::vector<float>{nan, 1.0f});
    EXPECT_TRUE(std::isnan(matmulBT(an, Matrix(1, 2, 1.0f))(0, 0)));
}

} // namespace
} // namespace dota
