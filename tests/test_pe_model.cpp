/**
 * @file
 * Tests for the bit-exact multi-precision PE model (Figure 7),
 * including exhaustive verification of the INT2-composed multipliers.
 */
#include <gtest/gtest.h>

#include "sim/pe_model.hpp"

namespace dota {
namespace {

TEST(PeModel, Int2CellRange)
{
    EXPECT_EQ(int2Multiply(-2, -2), 4);
    EXPECT_EQ(int2Multiply(-2, 1), -2);
    EXPECT_EQ(int2Multiply(1, 1), 1);
    EXPECT_EQ(int2Multiply(0, -2), 0);
}

TEST(PeModel, Int2CellRejectsOutOfRange)
{
    EXPECT_DEATH(int2Multiply(2, 0), "out of range");
    EXPECT_DEATH(int2Multiply(0, -3), "out of range");
}

TEST(PeModel, ComposedFx4Exhaustive)
{
    // Every signed 4-bit operand pair: the composed datapath must equal
    // the reference product (Figure 7c).
    for (int a = -8; a <= 7; ++a) {
        for (int b = -8; b <= 7; ++b) {
            size_t ops = 0;
            EXPECT_EQ(composedMultiply(a, b, 4, &ops),
                      static_cast<int64_t>(a) * b)
                << a << " * " << b;
            EXPECT_EQ(ops, 4u); // (4/2)^2 unit cells
        }
    }
}

TEST(PeModel, ComposedInt8Sampled)
{
    Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        const int a = static_cast<int>(rng.uniformInt(256)) - 128;
        const int b = static_cast<int>(rng.uniformInt(256)) - 128;
        size_t ops = 0;
        EXPECT_EQ(composedMultiply(a, b, 8, &ops),
                  static_cast<int64_t>(a) * b);
        EXPECT_EQ(ops, 16u); // (8/2)^2
    }
    // Extremes.
    EXPECT_EQ(composedMultiply(-128, -128, 8), 16384);
    EXPECT_EQ(composedMultiply(-128, 127, 8), -16256);
}

TEST(PeModel, ComposedFx16Sampled)
{
    Rng rng(2);
    for (int trial = 0; trial < 2000; ++trial) {
        const int a = static_cast<int>(rng.uniformInt(65536)) - 32768;
        const int b = static_cast<int>(rng.uniformInt(65536)) - 32768;
        size_t ops = 0;
        EXPECT_EQ(composedMultiply(a, b, 16, &ops),
                  static_cast<int64_t>(a) * b);
        EXPECT_EQ(ops, 64u); // (16/2)^2 — the full cell array
    }
    EXPECT_EQ(composedMultiply(-32768, -32768, 16),
              int64_t{32768} * 32768);
}

TEST(PeModel, ThroughputMatchesQuantModel)
{
    // The PE's per-cycle MAC counts must equal rmmuMacsPerPe (what the
    // cycle model assumes).
    EXPECT_EQ(MultiPrecisionPe(Precision::FX16).macsPerCycle(), 1u);
    EXPECT_EQ(MultiPrecisionPe(Precision::INT8).macsPerCycle(), 4u);
    EXPECT_EQ(MultiPrecisionPe(Precision::INT4).macsPerCycle(), 16u);
    EXPECT_EQ(MultiPrecisionPe(Precision::INT2).macsPerCycle(), 64u);
}

TEST(PeModel, AccumulatesAcrossCycles)
{
    MultiPrecisionPe pe(Precision::INT4);
    pe.cycle({{3, 4}, {-2, 5}});
    pe.cycle({{7, -7}});
    EXPECT_EQ(pe.psum(), 12 - 10 - 49);
    EXPECT_EQ(pe.cyclesElapsed(), 2u);
    pe.reset();
    EXPECT_EQ(pe.psum(), 0);
}

TEST(PeModel, FullCyclesFullyUtilizeEveryMode)
{
    for (Precision p : {Precision::FX16, Precision::INT8,
                        Precision::INT4, Precision::INT2}) {
        MultiPrecisionPe pe(p);
        std::vector<std::pair<int32_t, int32_t>> pairs(
            pe.macsPerCycle(), {1, 1});
        pe.cycle(pairs);
        EXPECT_DOUBLE_EQ(pe.utilization(), 1.0) << precisionName(p);
    }
}

TEST(PeModel, PartialCyclesUnderutilize)
{
    MultiPrecisionPe pe(Precision::INT2);
    pe.cycle({{1, 1}}); // 1 of 64 slots
    EXPECT_NEAR(pe.utilization(), 1.0 / 64.0, 1e-12);
}

TEST(PeModel, RejectsOverfilledCycle)
{
    MultiPrecisionPe pe(Precision::FX16);
    EXPECT_DEATH(pe.cycle({{1, 1}, {2, 2}}), "exceed");
}

TEST(PeModel, Int4GemmEquivalence)
{
    // A tiny GEMM computed entirely through the PE model equals the
    // integer reference — the RMMU's functional correctness.
    Rng rng(3);
    const Matrix a = Matrix::randomNormal(4, 8, rng);
    const Matrix b = Matrix::randomNormal(4, 8, rng);
    const QuantizedMatrix qa = quantize(a, 4);
    const QuantizedMatrix qb = quantize(b, 4);
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 4; ++j) {
            MultiPrecisionPe pe(Precision::INT4);
            for (size_t c = 0; c < 8; c += pe.macsPerCycle()) {
                std::vector<std::pair<int32_t, int32_t>> pairs;
                for (size_t cc = c;
                     cc < std::min<size_t>(8, c + pe.macsPerCycle());
                     ++cc)
                    pairs.emplace_back(qa.at(i, cc), qb.at(j, cc));
                pe.cycle(pairs);
            }
            int64_t ref = 0;
            for (size_t c = 0; c < 8; ++c)
                ref += static_cast<int64_t>(qa.at(i, c)) * qb.at(j, c);
            EXPECT_EQ(pe.psum(), ref);
        }
    }
}

} // namespace
} // namespace dota
