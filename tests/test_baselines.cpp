/**
 * @file
 * Tests for the GPU and ELSA baselines and the headline comparisons —
 * the paper's qualitative claims asserted as invariants.
 */
#include <gtest/gtest.h>

#include "core/dota.hpp"

namespace dota {
namespace {

TEST(Gpu, AttentionFractionGrowsWithSequence)
{
    // Figure 3's consequence: GPU time shifts into attention as n grows.
    double prev = 0.0;
    for (size_t n : {384u, 1024u, 4096u}) {
        Benchmark b = benchmark(BenchmarkId::QA);
        b.paper_shape.seq_len = n;
        const RunReport r = simulateGpu(b);
        const double frac = r.attentionTimeMs() / r.timeMs();
        EXPECT_GT(frac, prev);
        prev = frac;
    }
}

TEST(Gpu, TimesPositiveAndScale)
{
    const RunReport qa = simulateGpu(benchmark(BenchmarkId::QA));
    EXPECT_GT(qa.linearTimeMs(), 0.0);
    EXPECT_GT(qa.attentionTimeMs(), 0.0);
    EXPECT_GT(qa.totalEnergyJ(), 0.0);
    const RunReport ret = simulateGpu(benchmark(BenchmarkId::Retrieval));
    // 4K sequence attention dwarfs 384 despite the smaller model dim.
    EXPECT_GT(ret.attentionTimeMs(), qa.attentionTimeMs());
}

TEST(Gpu, UnifiedReportHasNoDetectionPhase)
{
    // Dense attention: the detection phase is identically zero, and the
    // report is labeled with the registry device name.
    const RunReport r = simulateGpu(benchmark(BenchmarkId::Text));
    EXPECT_EQ(r.device, "GPU-V100");
    EXPECT_EQ(r.per_layer.detection.cycles, 0u);
    EXPECT_EQ(r.per_layer.detection.energy_pj, 0.0);
    EXPECT_DOUBLE_EQ(r.detectionTimeMs(), 0.0);
}

TEST(Elsa, AttentionOnly)
{
    ElsaAccelerator elsa(HwConfig::dotaScaledForGpu());
    const RunReport r = elsa.simulate(benchmark(BenchmarkId::QA));
    EXPECT_EQ(r.per_layer.linear.cycles, 0u);
    EXPECT_GT(r.per_layer.detection.cycles, 0u);
    EXPECT_GT(r.per_layer.attention.cycles, 0u);
}

TEST(Elsa, DeviceLabel)
{
    ElsaAccelerator elsa;
    EXPECT_EQ(elsa.simulate(benchmark(BenchmarkId::Text)).device, "ELSA");
}

class HeadlineClaims : public ::testing::TestWithParam<BenchmarkId>
{
  protected:
    static System &
    system()
    {
        static System sys;
        return sys;
    }
};

TEST_P(HeadlineClaims, OrderingGpuElsaDotaCDotaA)
{
    const auto cmp = system().compare(GetParam());
    // Everyone beats the GPU on attention.
    EXPECT_GT(cmp.attention_speedup_elsa, 1.0);
    EXPECT_GT(cmp.attention_speedup_c, 1.0);
    // DOTA beats ELSA; aggressive beats conservative.
    EXPECT_GT(cmp.attention_speedup_c, cmp.attention_speedup_elsa);
    EXPECT_GE(cmp.attention_speedup_a, cmp.attention_speedup_c);
}

TEST_P(HeadlineClaims, AttentionSpeedupOrderOfMagnitude)
{
    const auto cmp = system().compare(GetParam());
    // The paper reports 109x-243x for DOTA-C; require the right order
    // of magnitude.
    EXPECT_GT(cmp.attention_speedup_c, 40.0);
    EXPECT_LT(cmp.attention_speedup_c, 1000.0);
}

TEST_P(HeadlineClaims, EndToEndBoundedByAmdahl)
{
    const auto cmp = system().compare(GetParam());
    EXPECT_GT(cmp.e2e_speedup_c, 1.0);
    EXPECT_LE(cmp.e2e_speedup_c, cmp.e2e_upper_bound * 1.001);
    // Close to the bound thanks to tiny retention (Section 5.3).
    EXPECT_GT(cmp.e2e_speedup_c, 0.5 * cmp.e2e_upper_bound);
}

TEST_P(HeadlineClaims, EnergyEfficiencyOrdering)
{
    const auto cmp = system().compare(GetParam());
    EXPECT_GT(cmp.energy_eff_elsa, 1.0);
    EXPECT_GT(cmp.energy_eff_c, cmp.energy_eff_elsa);
    EXPECT_GE(cmp.energy_eff_a, cmp.energy_eff_c);
    // Orders of magnitude over the GPU (paper: 618x-8642x).
    EXPECT_GT(cmp.energy_eff_c, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, HeadlineClaims,
    ::testing::Values(BenchmarkId::QA, BenchmarkId::Image,
                      BenchmarkId::Text, BenchmarkId::Retrieval,
                      BenchmarkId::LM),
    [](const ::testing::TestParamInfo<BenchmarkId> &info) {
        return benchmark(info.param).name;
    });

TEST(Headline, AverageAttentionSpeedupNearPaper)
{
    System sys;
    double acc = 0.0;
    for (const Benchmark &b : allBenchmarks())
        acc += sys.compare(b.id).attention_speedup_c;
    const double avg = acc / 5.0;
    // Paper headline: 152.6x average. Require the same ballpark.
    EXPECT_GT(avg, 75.0);
    EXPECT_LT(avg, 300.0);
}

TEST(Headline, ElsaGapNearPaper)
{
    // Paper: DOTA-C is 4.5x faster than ELSA on average.
    System sys;
    double acc = 0.0;
    for (const Benchmark &b : allBenchmarks()) {
        const auto cmp = sys.compare(b.id);
        acc += cmp.attention_speedup_c / cmp.attention_speedup_elsa;
    }
    const double avg = acc / 5.0;
    EXPECT_GT(avg, 2.0);
    EXPECT_LT(avg, 12.0);
}

TEST(System, UnscaledFabricIsTable2Scale)
{
    System::Options opt;
    opt.scale_for_gpu = false;
    System sys(opt);
    EXPECT_EQ(sys.accelerator().hw().lanes, 4u);
    EXPECT_NEAR(sys.accelerator().hw().peakTops(), 2.048, 1e-9);
}

TEST(System, RunProducesLabeledReports)
{
    System sys;
    const RunReport r = sys.run(BenchmarkId::Image, DotaMode::Aggressive);
    EXPECT_EQ(r.device, "DOTA-A");
    EXPECT_EQ(r.benchmark, "Image");
    EXPECT_EQ(r.layers, 4u);
}

} // namespace
} // namespace dota
