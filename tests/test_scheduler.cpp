/**
 * @file
 * Tests for the Token-Parallel schedulers, including the paper's worked
 * examples (Figures 8/9/10) and coverage/optimality properties on random
 * masks.
 */
#include <gtest/gtest.h>

#include "sched/dataflow.hpp"
#include "sched/scheduler.hpp"
#include "workloads/mask_synth.hpp"

namespace dota {
namespace {

std::vector<std::vector<uint32_t>>
groupRows(const SparseMask &mask, size_t base, size_t t)
{
    std::vector<std::vector<uint32_t>> rows;
    for (size_t q = base; q < std::min(base + t, mask.rows()); ++q)
        rows.push_back(mask.row(q));
    return rows;
}

TEST(Scheduler, Figure8RowByRowLoadsTen)
{
    const auto stats = analyzeDataflow(figure8Mask(), Dataflow::RowByRow);
    EXPECT_EQ(stats.key_loads, 10u); // the paper's "10 Key Vectors"
    EXPECT_EQ(stats.connections, 10u);
}

TEST(Scheduler, Figure8InOrderLoadsFive)
{
    const auto stats =
        analyzeDataflow(figure8Mask(), Dataflow::TokenParallelInOrder, 4);
    EXPECT_EQ(stats.key_loads, 5u); // the paper's "5 Key Vectors"
}

TEST(Scheduler, Figure9InOrderLoadsEleven)
{
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelInOrder, 4);
    EXPECT_EQ(stats.key_loads, 11u); // "11 Key Vectors"
}

TEST(Scheduler, Figure9OutOfOrderLoadsSeven)
{
    const auto stats =
        analyzeDataflow(figure9Mask(), Dataflow::TokenParallelOoO, 4);
    EXPECT_EQ(stats.key_loads, 7u); // "7 Key Vectors"
}

TEST(Scheduler, Figure9ScheduleCoversAndBalances)
{
    LocalityAwareScheduler las(4);
    const SparseMask m = figure9Mask();
    const GroupSchedule gs = las.scheduleGroup(m, 0);
    EXPECT_TRUE(gs.covers(groupRows(m, 0, 4)));
    EXPECT_EQ(gs.rounds.size(), 3u); // balanced rows -> k rounds
    EXPECT_DOUBLE_EQ(gs.utilization(), 1.0);
}

TEST(Scheduler, Figure9FirstRoundSharesMostPopularKey)
{
    // Step-1 of Figure 10: the most-shared key (k2, id 1) is issued for
    // three queries in the first round.
    LocalityAwareScheduler las(4);
    const GroupSchedule gs = las.scheduleGroup(figure9Mask(), 0);
    const Round &first = gs.rounds[0];
    bool found = false;
    for (const Issue &is : first.issues)
        if (is.key == 1 && is.popcount() == 3)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Scheduler, RowByRowEqualsNnz)
{
    Rng rng(161);
    MaskProfile p;
    p.retention = 0.1;
    const SparseMask m = synthesizeMask(128, p, rng);
    const auto stats = analyzeDataflow(m, Dataflow::RowByRow);
    EXPECT_EQ(stats.key_loads, m.nnz());
}

class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double>>
{};

TEST_P(SchedulerProperty, CoverageOnSynthesizedMasks)
{
    const auto [t, retention] = GetParam();
    Rng rng(162);
    MaskProfile p;
    p.retention = retention;
    const SparseMask m = synthesizeMask(64, p, rng);
    LocalityAwareScheduler las(t);
    for (size_t base = 0; base < m.rows(); base += t) {
        const GroupSchedule gs = las.scheduleGroup(m, base);
        EXPECT_TRUE(gs.covers(groupRows(m, base, t)))
            << "group at " << base;
    }
}

TEST_P(SchedulerProperty, OoONeverWorseThanInOrderNorBelowIdeal)
{
    const auto [t, retention] = GetParam();
    Rng rng(163);
    MaskProfile p;
    p.retention = retention;
    const SparseMask m = synthesizeMask(96, p, rng);
    const auto ooo = analyzeDataflow(m, Dataflow::TokenParallelOoO, t);
    const auto ino =
        analyzeDataflow(m, Dataflow::TokenParallelInOrder, t);
    EXPECT_LE(ooo.key_loads, ino.key_loads);
    EXPECT_GE(ooo.key_loads, ooo.ideal_loads);
    EXPECT_EQ(ooo.connections, m.nnz());
    EXPECT_EQ(ino.connections, m.nnz());
}

TEST_P(SchedulerProperty, BalancedMasksFullyUtilize)
{
    const auto [t, retention] = GetParam();
    Rng rng(164);
    MaskProfile p;
    p.retention = retention;
    const SparseMask m = synthesizeMask(64, p, rng);
    ASSERT_TRUE(m.rowBalanced());
    LocalityAwareScheduler las(t);
    // Full groups of balanced rows achieve utilization 1.
    for (size_t base = 0; base + t <= m.rows(); base += t) {
        const GroupSchedule gs = las.scheduleGroup(m, base);
        EXPECT_DOUBLE_EQ(gs.utilization(), 1.0);
        EXPECT_EQ(gs.rounds.size(), m.row(base).size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4},
                                         size_t{6}),
                       ::testing::Values(0.05, 0.1, 0.3)));

TEST(Scheduler, UnbalancedRowsUnderutilize)
{
    SparseMask m(4, 16);
    m.setRow(0, {0, 1, 2, 3, 4, 5});
    m.setRow(1, {0});
    m.setRow(2, {1});
    m.setRow(3, {2});
    LocalityAwareScheduler las(4);
    const GroupSchedule gs = las.scheduleGroup(m, 0);
    EXPECT_TRUE(gs.covers(groupRows(m, 0, 4)));
    EXPECT_LT(gs.utilization(), 1.0);
    EXPECT_EQ(gs.rounds.size(), 6u); // longest row dictates rounds
}

TEST(Scheduler, PartialTailGroup)
{
    SparseMask m(6, 8);
    for (size_t r = 0; r < 6; ++r)
        m.setRow(r, {0, static_cast<uint32_t>(r)});
    LocalityAwareScheduler las(4);
    const GroupSchedule tail = las.scheduleGroup(m, 4);
    EXPECT_EQ(tail.active_rows, 2u);
    EXPECT_TRUE(tail.covers(groupRows(m, 4, 4)));
}

TEST(Scheduler, EmptyGroupBeyondMask)
{
    SparseMask m(4, 8);
    LocalityAwareScheduler las(4);
    const GroupSchedule gs = las.scheduleGroup(m, 8);
    EXPECT_EQ(gs.active_rows, 0u);
    EXPECT_TRUE(gs.rounds.empty());
}

TEST(Scheduler, DuplicatedSharedKeysReissued)
{
    // A key shared by all queries but needed twice by none: issued once.
    SparseMask m(2, 4);
    m.setRow(0, {0, 1});
    m.setRow(1, {0, 2});
    LocalityAwareScheduler las(2);
    const GroupSchedule gs = las.scheduleGroup(m, 0);
    EXPECT_TRUE(gs.covers(groupRows(m, 0, 2)));
    EXPECT_EQ(gs.keyLoads(), 3u); // key 0 shared, 1 and 2 separate
}

TEST(Scheduler, BufferCount)
{
    EXPECT_EQ(LocalityAwareScheduler(4).bufferCount(), 15u);
    EXPECT_EQ(LocalityAwareScheduler(6).bufferCount(), 63u);
    EXPECT_EQ(LocalityAwareScheduler(1).bufferCount(), 1u);
}

TEST(Scheduler, RoundServesEachQueryAtMostOnce)
{
    Rng rng(165);
    MaskProfile p;
    p.retention = 0.2;
    const SparseMask m = synthesizeMask(32, p, rng);
    LocalityAwareScheduler las(4);
    for (size_t base = 0; base < 32; base += 4) {
        const GroupSchedule gs = las.scheduleGroup(m, base);
        for (const Round &r : gs.rounds) {
            uint32_t seen = 0;
            for (const Issue &is : r.issues) {
                EXPECT_EQ(seen & is.query_mask, 0u);
                seen |= is.query_mask;
            }
        }
    }
}

} // namespace
} // namespace dota
