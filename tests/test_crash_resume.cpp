/**
 * @file
 * Preemption property tests: kill the trainer at any step, resume from
 * the newest checkpoint, and the continued trajectory must be
 * bit-identical to the uninterrupted golden run — at DOTA_THREADS=1 and
 * DOTA_THREADS=8 (the checkpoint captures params, Adam moments, the
 * data-stream RNG, the loss history and the guard counters, and the
 * batch loop reduces gradients in fixed order).
 *
 * The golden trajectory lives in tests/data/golden_resume.txt.
 * Regenerate (after an intentional numerics change) with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_parallel_tests \
 *       --gtest_filter='CrashResume.*'
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/fileio.hpp"
#include "common/thread_pool.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

constexpr size_t kSteps = 16;
constexpr size_t kCheckpointEvery = 4;

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) + "/golden_resume.txt";
}

std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "dota_resume_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

TaskConfig
taskCfg()
{
    TaskConfig tc;
    tc.seq_len = 32;
    tc.in_dim = 8;
    tc.classes = 4;
    tc.signal_count = 4;
    tc.seed = 21;
    return tc;
}

TransformerConfig
modelCfg()
{
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 32;
    mc.classes = 4;
    mc.seed = 33;
    return mc;
}

/**
 * One training run from a fresh model. @p halt_after simulates a kill
 * after that many completed steps (0 = run to the end); @p dir enables
 * checkpointing, and @p resume restores the newest checkpoint first.
 */
std::vector<double>
run(size_t halt_after, const std::string &dir, bool resume)
{
    SyntheticTask task(taskCfg());
    TransformerClassifier model(modelCfg());
    TrainConfig cfg;
    cfg.steps = kSteps;
    cfg.batch = 4;
    cfg.data_seed = 55;
    cfg.halt_after_step = halt_after;
    if (!dir.empty()) {
        cfg.checkpoint.dir = dir;
        cfg.checkpoint.every = kCheckpointEvery;
        cfg.checkpoint.resume = resume;
    }
    ClassifierTrainer trainer(model, task, cfg);
    trainer.train();
    return trainer.lossHistory();
}

std::string
formatLoss(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

std::vector<double>
readGolden()
{
    std::ifstream in(goldenPath());
    std::vector<double> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        out.push_back(std::strtod(line.c_str(), nullptr));
    }
    return out;
}

void
expectMatchesGolden(const std::vector<double> &losses,
                    const std::vector<double> &golden,
                    const std::string &context)
{
    ASSERT_EQ(losses.size(), golden.size()) << context;
    for (size_t s = 0; s < losses.size(); ++s)
        EXPECT_EQ(losses[s], golden[s])
            << context << " diverges at step " << s << ": "
            << formatLoss(losses[s]) << " != " << formatLoss(golden[s]);
}

TEST(CrashResume, UninterruptedRunMatchesGolden)
{
    ThreadPool::setGlobalConcurrency(1);
    const std::vector<double> losses = run(0, "", false);
    ThreadPool::setGlobalConcurrency(configuredThreads());
    ASSERT_EQ(losses.size(), kSteps);

    if (envFlag("DOTA_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath());
        out << "# Uninterrupted serial (DOTA_THREADS=1) loss trajectory, "
            << kSteps << " steps, fixed seeds.\n"
            << "# Kill-and-resume runs must reproduce it bit-for-bit; "
               "values are C99 hex floats.\n"
            << "# Regenerate with DOTA_REGEN_GOLDEN=1 (see "
               "test_crash_resume.cpp).\n";
        for (double v : losses)
            out << formatLoss(v) << "\n";
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    expectMatchesGolden(losses, readGolden(), "uninterrupted");
}

TEST(CrashResume, CheckpointingDoesNotPerturbTheTrajectory)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    const std::vector<double> golden = readGolden();
    ASSERT_FALSE(golden.empty()) << "missing " << goldenPath();
    const std::string dir = scratchDir("observer");
    ThreadPool::setGlobalConcurrency(1);
    const std::vector<double> losses = run(0, dir, false);
    ThreadPool::setGlobalConcurrency(configuredThreads());
    expectMatchesGolden(losses, golden, "checkpointing run");
    EXPECT_FALSE(listTrainCheckpoints(dir).empty());
}

TEST(CrashResume, KillAtAnyStepResumesBitIdenticallySerial)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    const std::vector<double> golden = readGolden();
    ASSERT_FALSE(golden.empty()) << "missing " << goldenPath();

    // Kill steps straddle the checkpoint cadence: before the first
    // checkpoint (3 — resume starts fresh), on the cadence (8), just
    // after one (10), and just before the end (15).
    ThreadPool::setGlobalConcurrency(1);
    for (size_t kill_at : {size_t(3), size_t(8), size_t(10),
                           size_t(15)}) {
        const std::string dir =
            scratchDir("serial_k" + std::to_string(kill_at));
        const std::vector<double> partial = run(kill_at, dir, false);
        ASSERT_EQ(partial.size(), kill_at);
        const std::vector<double> resumed = run(0, dir, true);
        expectMatchesGolden(resumed, golden,
                            "kill@" + std::to_string(kill_at));
    }
    ThreadPool::setGlobalConcurrency(configuredThreads());
}

TEST(CrashResume, KillAndResumeBitIdenticalAtEightThreads)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    const std::vector<double> golden = readGolden();
    ASSERT_FALSE(golden.empty()) << "missing " << goldenPath();

    ThreadPool::setGlobalConcurrency(8);
    for (size_t kill_at : {size_t(6), size_t(13)}) {
        const std::string dir =
            scratchDir("par_k" + std::to_string(kill_at));
        run(kill_at, dir, false);
        const std::vector<double> resumed = run(0, dir, true);
        expectMatchesGolden(resumed, golden,
                            "8-thread kill@" + std::to_string(kill_at));
    }
    // Kill under 8 threads, resume under 1: the checkpoint carries no
    // thread-count dependence either.
    const std::string dir = scratchDir("cross_k10");
    run(10, dir, false);
    ThreadPool::setGlobalConcurrency(1);
    const std::vector<double> resumed = run(0, dir, true);
    ThreadPool::setGlobalConcurrency(configuredThreads());
    expectMatchesGolden(resumed, golden, "8->1 thread kill@10");
}

TEST(CrashResume, LMKillAndResumeBitIdentical)
{
    // The LM trainer shares the checkpoint plumbing; compare a
    // kill-and-resume run against an in-process uninterrupted run.
    GrammarConfig gc;
    gc.seq_len = 24;
    gc.vocab = 32;
    TransformerConfig mc;
    mc.in_dim = 8;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 32;
    mc.classes = 2;
    mc.vocab = 32;
    mc.max_seq = 32;
    mc.seed = 44;
    TrainConfig cfg;
    cfg.steps = 8;
    cfg.batch = 2;
    cfg.data_seed = 66;

    auto runLm = [&](size_t halt_after, const std::string &dir,
                     bool resume) {
        SyntheticGrammar grammar(gc);
        CausalLM model(mc);
        TrainConfig c = cfg;
        c.halt_after_step = halt_after;
        if (!dir.empty()) {
            c.checkpoint.dir = dir;
            c.checkpoint.every = 2;
            c.checkpoint.resume = resume;
        }
        LMTrainer trainer(model, grammar, c);
        trainer.train();
        return trainer.lossHistory();
    };

    ThreadPool::setGlobalConcurrency(1);
    const std::vector<double> uninterrupted = runLm(0, "", false);
    const std::string dir = scratchDir("lm_k5");
    runLm(5, dir, false);
    const std::vector<double> resumed = runLm(0, dir, true);
    ThreadPool::setGlobalConcurrency(configuredThreads());
    ASSERT_EQ(uninterrupted.size(), cfg.steps);
    ASSERT_EQ(resumed.size(), uninterrupted.size());
    for (size_t s = 0; s < resumed.size(); ++s)
        EXPECT_EQ(resumed[s], uninterrupted[s]) << "LM step " << s;
}

} // namespace
} // namespace dota
