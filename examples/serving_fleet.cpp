/**
 * @file
 * Domain example: serving a mixed batch of long-sequence requests on a
 * scale-out DOTA deployment (Section 4.1's sequence-level parallelism).
 *
 * A batch of variable-length Text-classification requests (lengths drawn
 * from a heavy-tailed distribution, as request mixes are in practice) is
 * dispatched onto fleets of 1..8 accelerators; the example reports
 * latency, throughput scaling, and utilization, and compares DOTA-C
 * against DOTA-F (no detection) fleets.
 *
 * Run: ./build/examples/serving_fleet
 */
#include <iostream>

#include "core/dota.hpp"
#include "sim/fleet.hpp"

using namespace dota;

namespace {

std::vector<size_t>
requestMix(size_t count, Rng &rng)
{
    // Heavy-tailed lengths between 256 and 4096, rounded to 128.
    std::vector<size_t> lens;
    lens.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const double u = rng.uniform();
        const double len = 256.0 * std::pow(4096.0 / 256.0, u * u);
        lens.push_back(
            std::min<size_t>(4096, ((static_cast<size_t>(len) + 127) /
                                    128) * 128));
    }
    return lens;
}

} // namespace

int
main()
{
    std::cout << "== Scale-out serving on DOTA accelerators ==\n\n";
    Rng rng(2024);
    const std::vector<size_t> batch = requestMix(48, rng);
    std::cout << "batch: " << batch.size()
              << " Text-model requests, lengths 256-4096 tokens "
                 "(heavy-tailed)\n\n";

    const Benchmark &bench = benchmark(BenchmarkId::Text);

    Table t("fleet scaling (DOTA-C, Table 2 accelerators)");
    t.header({"accelerators", "makespan", "throughput", "mean latency",
              "utilization"});
    double first_makespan = 0.0;
    for (size_t n : {1u, 2u, 4u, 8u}) {
        FleetConfig fc;
        fc.accelerators = n;
        SimOptions opt;
        opt.mode = DotaMode::Conservative;
        FleetSimulator fleet(fc, bench, opt);
        const FleetReport r = fleet.run(batch);
        if (n == 1)
            first_makespan = r.makespan_ms;
        t.addRow({fmtNum(double(n), 0), fmtNum(r.makespan_ms, 2) + "ms",
                  fmtNum(r.throughput_seq_s, 1) + " seq/s",
                  fmtNum(r.mean_latency_ms, 2) + "ms",
                  fmtPct(r.utilization)});
    }
    t.print(std::cout);
    std::cout << "speedup at 8 accelerators: "
              << fmtSpeedup(first_makespan /
                            FleetSimulator(
                                FleetConfig{8, HwConfig::dota(),
                                            EnergyModel::tsmc22()},
                                bench,
                                SimOptions{DotaMode::Conservative})
                                .run(batch)
                                .makespan_ms)
              << " (near-linear: jobs are independent)\n\n";

    // Detection on vs off for the same fleet.
    Table d("DOTA-C vs DOTA-F fleets (4 accelerators)");
    d.header({"mode", "makespan", "throughput"});
    for (DotaMode mode : {DotaMode::Full, DotaMode::Conservative,
                          DotaMode::Aggressive}) {
        FleetConfig fc;
        fc.accelerators = 4;
        SimOptions opt;
        opt.mode = mode;
        FleetSimulator fleet(fc, bench, opt);
        const FleetReport r = fleet.run(batch);
        d.addRow({dotaModeName(mode), fmtNum(r.makespan_ms, 2) + "ms",
                  fmtNum(r.throughput_seq_s, 1) + " seq/s"});
    }
    d.print(std::cout);
    std::cout << "\nDetection multiplies fleet throughput on the same "
                 "silicon — the system-level\npayoff of omitting weak "
                 "attentions.\n";
    return 0;
}
