/**
 * @file
 * Domain example: serving a mixed batch of long-sequence requests on a
 * scale-out DOTA deployment (Section 4.1's sequence-level parallelism).
 *
 * A batch of variable-length Text-classification requests (lengths drawn
 * from a heavy-tailed distribution, as request mixes are in practice) is
 * dispatched onto fleets of 1..8 accelerators; the example reports
 * latency, throughput scaling, and utilization, compares DOTA-C against
 * DOTA-F (no detection) fleets, and continues with a *heterogeneous*
 * fleet mixing DOTA-C parts of two speed bins with a dense DOTA-F card
 * — the speed-aware dispatcher routes work to whoever completes it
 * first.
 *
 * The finale is a chaos run on the online serving simulator
 * (src/serve/): the same Poisson request stream replayed against a
 * healthy 8-accelerator fleet and against one that loses a quarter of
 * its capacity mid-trace — failover rescues the in-flight work, the
 * circuit breaker and retries absorb transient errors, and the
 * graceful-degradation ladder sheds detector retention (accuracy) to
 * hold latency. Both runs are replayable bit-for-bit from their
 * (arrival, fault) seeds.
 *
 * The closing act pits the two failover strategies against each other
 * on a kill + drain plan: re-prefill-only (migration off) versus live
 * KV migration (DESIGN.md §15), which moves sealed pages to a healthy
 * arena instead of recomputing them — the wasted-versus-saved token
 * table is the whole argument.
 *
 * Run: ./build/examples/serving_fleet
 */
#include <iostream>

#include "core/dota.hpp"

using namespace dota;

namespace {

std::vector<size_t>
requestMix(size_t count, Rng &rng)
{
    // Heavy-tailed lengths between 256 and 4096, rounded to 128.
    std::vector<size_t> lens;
    lens.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const double u = rng.uniform();
        const double len = 256.0 * std::pow(4096.0 / 256.0, u * u);
        lens.push_back(
            std::min<size_t>(4096, ((static_cast<size_t>(len) + 127) /
                                    128) * 128));
    }
    return lens;
}

} // namespace

int
main()
{
    std::cout << "== Scale-out serving on DOTA accelerators ==\n\n";
    Rng rng(2024);
    const std::vector<size_t> batch = requestMix(48, rng);
    std::cout << "batch: " << batch.size()
              << " Text-model requests, lengths 256-4096 tokens "
                 "(heavy-tailed)\n\n";

    const Benchmark &bench = benchmark(BenchmarkId::Text);

    Table t("fleet scaling (DOTA-C, Table 2 accelerators)");
    t.header({"accelerators", "makespan", "throughput", "mean latency",
              "utilization"});
    double first_makespan = 0.0;
    double eight_makespan = 0.0;
    for (size_t n : {1u, 2u, 4u, 8u}) {
        FleetConfig fc;
        fc.accelerators = n;
        SimOptions opt;
        opt.mode = DotaMode::Conservative;
        FleetSimulator fleet(fc, bench, opt);
        const FleetReport r = fleet.run(batch);
        if (n == 1)
            first_makespan = r.makespan_ms;
        if (n == 8)
            eight_makespan = r.makespan_ms;
        t.addRow({fmtNum(double(n), 0), fmtNum(r.makespan_ms, 2) + "ms",
                  fmtNum(r.throughput_seq_s, 1) + " seq/s",
                  fmtNum(r.mean_latency_ms, 2) + "ms",
                  fmtPct(r.utilization)});
    }
    t.print(std::cout);
    std::cout << "speedup at 8 accelerators: "
              << fmtSpeedup(first_makespan / eight_makespan)
              << " (near-linear: jobs are independent)\n\n";

    // Detection on vs off for the same fleet.
    Table d("DOTA-C vs DOTA-F fleets (4 accelerators)");
    d.header({"mode", "makespan", "throughput", "energy/seq"});
    for (DotaMode mode : {DotaMode::Full, DotaMode::Conservative,
                          DotaMode::Aggressive}) {
        FleetConfig fc;
        fc.accelerators = 4;
        SimOptions opt;
        opt.mode = mode;
        FleetSimulator fleet(fc, bench, opt);
        const FleetReport r = fleet.run(batch);
        d.addRow({dotaModeName(mode), fmtNum(r.makespan_ms, 2) + "ms",
                  fmtNum(r.throughput_seq_s, 1) + " seq/s",
                  fmtNum(r.energy_per_seq_j * 1e3, 2) + "mJ"});
    }
    d.print(std::cout);
    std::cout << "\nDetection multiplies fleet throughput on the same "
                 "silicon — the system-level\npayoff of omitting weak "
                 "attentions.\n\n";

    // Heterogeneous fleet: mixed device kinds and speed bins, one batch.
    FleetConfig het;
    het.devices = {
        DeviceSpec{"dota-c", 2, 1.0, DeviceOptions::table2()},
        DeviceSpec{"dota-c", 1, 1.5, DeviceOptions::table2()},
        DeviceSpec{"dota-f", 1, 1.0, DeviceOptions::table2()},
    };
    FleetSimulator mixed(het, bench);
    const FleetReport hr = mixed.run(batch);
    Table h("heterogeneous fleet (2x DOTA-C, 1x DOTA-C @1.5x, "
            "1x DOTA-F)");
    // Equal busy times are the *goal*: the 1.5x bin retires 1.5x the
    // work per wall-clock ms, so weight busy time by speed to see who
    // actually carried the batch.
    const std::vector<double> speeds{1.0, 1.0, 1.5, 1.0};
    double weighted = 0.0;
    for (size_t a = 0; a < hr.accel_busy_ms.size(); ++a)
        weighted += hr.accel_busy_ms[a] * speeds[a];
    h.header({"accelerator", "device", "speed", "busy", "work share"});
    for (size_t a = 0; a < hr.accel_busy_ms.size(); ++a)
        h.addRow({fmtNum(double(a), 0), hr.accel_device[a],
                  fmtNum(speeds[a], 1) + "x",
                  fmtNum(hr.accel_busy_ms[a], 2) + "ms",
                  fmtPct(hr.accel_busy_ms[a] * speeds[a] / weighted)});
    h.print(std::cout);
    std::cout << "makespan " << fmtNum(hr.makespan_ms, 2) << "ms, "
              << fmtNum(hr.throughput_seq_s, 1) << " seq/s, energy/seq "
              << fmtNum(hr.energy_per_seq_j * 1e3, 2)
              << "mJ — near-equal busy times with the 1.5x bin\n"
                 "absorbing the largest work share is exactly what "
                 "speed-aware dispatch should produce.\n\n";

    // Chaos: online serving while a quarter of the fleet dies mid-run.
    std::cout << "== Chaos run: online serving under fail-stop faults "
                 "==\n\n";
    TraceConfig tc;
    tc.process = ArrivalProcess::Poisson;
    tc.rate_per_s = 1400.0;
    tc.requests = 300;
    tc.seed = 42;            // arrival seed
    tc.deadline_ms = 150.0;
    ServeConfig sc;
    sc.accelerators = 8;
    sc.mode = DotaMode::Full; // full retention until pressure mounts
    sc.policy.timeout_ms = 80.0;
    sc.policy.max_retries = 3;
    sc.policy.queue_limit = 96;
    sc.policy.degrade_depth_1 = 1.0;
    sc.policy.degrade_depth_2 = 3.0;
    const RequestTrace trace = generateTrace(tc);
    ServingSimulator sim(sc, bench);
    std::cout << "trace: " << trace.requests.size()
              << " requests, Poisson " << fmtNum(tc.rate_per_s, 0)
              << " req/s (seed " << tc.seed << "), deadline "
              << fmtNum(tc.deadline_ms, 0) << "ms, fleet of "
              << sim.size() << " DOTA-F accelerators\n\n";

    // Two accelerators fail-stop mid-trace (one comes back), a third
    // straggles at 4x for a while, and every attempt can transiently
    // fail with 2% probability.
    const FaultPlan plan = parseFaultPlan(
        "kill:0@120,kill:1@160,revive:0@420,slow:2@100-400x4,"
        "transient:0.02");
    const uint64_t fault_seed = 2024;
    std::cout << "fault plan: " << describeFaultPlan(plan)
              << " (fault seed " << fault_seed << ")\n\n";

    const ServeReport healthy = sim.run(trace);
    const ServeReport chaos = sim.run(trace, plan, fault_seed);
    Table c("healthy vs chaos (same arrival seed)");
    c.header({"metric", "healthy", "chaos"});
    c.addRow({"completed", fmtNum(double(healthy.completed), 0),
              fmtNum(double(chaos.completed), 0)});
    c.addRow({"failed / shed",
              format("{} / {}", healthy.failed, healthy.shed()),
              format("{} / {}", chaos.failed, chaos.shed())});
    c.addRow({"retries + failovers",
              fmtNum(double(healthy.retries + healthy.failovers), 0),
              fmtNum(double(chaos.retries + chaos.failovers), 0)});
    c.addRow({"p50 latency", fmtNum(healthy.p50_ms, 2) + "ms",
              fmtNum(chaos.p50_ms, 2) + "ms"});
    c.addRow({"p99 latency", fmtNum(healthy.p99_ms, 2) + "ms",
              fmtNum(chaos.p99_ms, 2) + "ms"});
    c.addRow({"deadline miss rate", fmtPct(healthy.deadline_miss_rate),
              fmtPct(chaos.deadline_miss_rate)});
    c.addRow({"goodput", fmtNum(healthy.goodput_seq_s, 1) + " seq/s",
              fmtNum(chaos.goodput_seq_s, 1) + " seq/s"});
    c.addRow({"mean retention served", fmtNum(healthy.mean_retention, 3),
              fmtNum(chaos.mean_retention, 3)});
    c.print(std::cout);
    std::cout << "\nfull chaos report:\n";
    chaos.print(std::cout);
    std::cout << "\nzero lost requests: " << chaos.requests << " = "
              << chaos.completed << " completed + " << chaos.shed()
              << " shed + " << chaos.failed
              << " failed — failover re-queued every in-flight request "
                 "of the dead\naccelerators, and the retention ladder "
                 "(L0 full -> L2 aggressive) traded accuracy\nfor "
                 "latency while capacity was down.\n";

    // Chaos generation: the token-grain engine under the same abuse —
    // device kills mid-decode, a KV page corrupted in DRAM, transient
    // step errors — with per-page CRC seals catching the corruption
    // before any poisoned token is served (DESIGN.md §14).
    std::cout << "\n== Chaos generation: continuous batching under "
                 "faults ==\n\n";
    GenTraceConfig gc;
    gc.arrivals.rate_per_s = 400.0;
    gc.arrivals.requests = 64;
    gc.arrivals.seed = 71;
    gc.out_min = 96;
    gc.out_max = 256;
    EngineConfig ec;
    ec.accelerators = 3;
    ec.mode = DotaMode::Full;
    ec.batch.max_batch_seqs = 4;
    ec.batch.watchdog_stall_ms = 25.0;
    ec.policy.degrade_depth_1 = 3.0;
    ec.policy.degrade_depth_2 = 6.0;
    const GenTrace gtrace = generateGenTrace(gc);
    const FaultPlan gplan = parseFaultPlan(
        "kill:0@30,revive:0@95,kill:1@60,revive:1@150,corrupt:2@45,"
        "corrupt:2@75,transient:0.01");
    const uint64_t gen_fault_seed = 7;
    std::cout << "trace: " << gtrace.requests.size()
              << " generation requests (outputs 96-256 tokens), fleet "
                 "of 3 DOTA accelerators\nfault plan: "
              << describeFaultPlan(gplan) << " (fault seed "
              << gen_fault_seed << ")\n\n";

    const GenerationEngine gen(ec, bench);
    const ServeReport ghealthy = gen.run(gtrace);
    const ServeReport gchaos = gen.run(gtrace, gplan, gen_fault_seed);
    Table g("healthy vs chaos generation (same arrival seed)");
    g.header({"metric", "healthy", "chaos"});
    g.addRow({"completed", fmtNum(double(ghealthy.completed), 0),
              fmtNum(double(gchaos.completed), 0)});
    g.addRow({"TTFT p50", fmtNum(ghealthy.gen.ttft_p50_ms, 2) + "ms",
              fmtNum(gchaos.gen.ttft_p50_ms, 2) + "ms"});
    g.addRow({"TTFT p99", fmtNum(ghealthy.gen.ttft_p99_ms, 2) + "ms",
              fmtNum(gchaos.gen.ttft_p99_ms, 2) + "ms"});
    g.addRow({"TPOT p50", fmtNum(ghealthy.gen.tpot_p50_ms, 3) + "ms",
              fmtNum(gchaos.gen.tpot_p50_ms, 3) + "ms"});
    g.addRow({"failovers (prefill/decode)",
              format("{}/{}", ghealthy.gen.prefill_failovers,
                     ghealthy.gen.decode_failovers),
              format("{}/{}", gchaos.gen.prefill_failovers,
                     gchaos.gen.decode_failovers)});
    g.addRow({"wasted decode tokens",
              fmtNum(double(ghealthy.gen.wasted_decode_tokens), 0),
              fmtNum(double(gchaos.gen.wasted_decode_tokens), 0)});
    g.addRow({"corrupted pages caught",
              fmtNum(double(ghealthy.gen.corrupted_pages_detected), 0),
              fmtNum(double(gchaos.gen.corrupted_pages_detected), 0)});
    g.addRow({"recoveries (p95)",
              format("{} ({}ms)", ghealthy.gen.recoveries,
                     fmtNum(ghealthy.gen.recovery_p95_ms, 1)),
              format("{} ({}ms)", gchaos.gen.recoveries,
                     fmtNum(gchaos.gen.recovery_p95_ms, 1))});
    g.addRow({"mean retention served",
              fmtNum(ghealthy.mean_retention, 3),
              fmtNum(gchaos.mean_retention, 3)});
    g.print(std::cout);
    std::cout << "\nzero lost requests (" << gchaos.requests << " = "
              << gchaos.completed << " + " << gchaos.shed() << " + "
              << gchaos.failed
              << ") and zero corrupted tokens served: every completed "
                 "request re-emitted its\nfull output budget after "
                 "failover or quarantine, and both runs replay "
                 "bit-for-bit\nfrom (arrival seed, fault plan, fault "
                 "seed).\n";

    // Live KV migration vs re-prefill-only: the same kill + drain plan
    // — one device dies mid-decode, another is gracefully drained for
    // maintenance — served twice. With migration off every victim
    // recomputes its prompt from scratch (wasted prefill tokens); with
    // it on, sealed KV pages move to a healthy arena, are seal-checked
    // on arrival, and decode resumes mid-stream (DESIGN.md §15).
    std::cout << "\n== Live KV migration: failover without re-prefill "
                 "==\n\n";
    const FaultPlan mplan =
        parseFaultPlan("kill:0@30,drain:1@60,revive:0@120");
    std::cout << "fault plan: " << describeFaultPlan(mplan)
              << " (fault seed " << gen_fault_seed << ")\n\n";
    EngineConfig base = ec;
    base.migrate.enabled = false;
    base.migrate.probation_steps = 0;
    const GenerationEngine reprefill(base, bench);
    const GenerationEngine live(ec, bench); // defaults: migration on
    const ServeReport roff = reprefill.run(gtrace, mplan, gen_fault_seed);
    const ServeReport ron = live.run(gtrace, mplan, gen_fault_seed);
    Table m("re-prefill-only vs live migration (same kill + drain)");
    m.header({"metric", "re-prefill", "migration"});
    m.addRow({"completed", fmtNum(double(roff.completed), 0),
              fmtNum(double(ron.completed), 0)});
    m.addRow({"sequences migrated", "0",
              fmtNum(double(ron.gen.migrations), 0)});
    m.addRow({"pages moved / bytes",
              "0 / 0",
              format("{} / {}", ron.gen.migrated_pages,
                     fmtBytes(double(ron.gen.migrated_bytes)))});
    m.addRow({"wasted prefill tokens",
              fmtNum(double(roff.gen.wasted_prefill_tokens), 0),
              fmtNum(double(ron.gen.wasted_prefill_tokens), 0)});
    m.addRow({"saved prefill tokens", "0",
              fmtNum(double(ron.gen.saved_prefill_tokens), 0)});
    m.addRow({"saved decode tokens", "0",
              fmtNum(double(ron.gen.saved_decode_tokens), 0)});
    m.addRow({"migration p95",
              "-", fmtNum(ron.gen.migration_p95_ms, 2) + "ms"});
    m.addRow({"TTFT p99", fmtNum(roff.gen.ttft_p99_ms, 2) + "ms",
              fmtNum(ron.gen.ttft_p99_ms, 2) + "ms"});
    m.print(std::cout);
    std::cout << "\nthe drain emptied its device without losing a "
                 "token of progress ("
              << ron.gen.saved_prefill_tokens << " prefill +\n"
              << ron.gen.saved_decode_tokens
              << " decode tokens kept live), and the revived device "
                 "re-earned full duty\nthrough "
              << ron.gen.probation_promotions
              << " probation promotion(s) — wasted prefill fell from "
              << roff.gen.wasted_prefill_tokens << " to "
              << ron.gen.wasted_prefill_tokens << " tokens.\n";
    return 0;
}
