/**
 * @file
 * Walk through the Token-Parallel dataflow on the paper's own worked
 * examples (Figures 8, 9 and 10), printing every scheduling round, then
 * show the same machinery on a realistic detected mask.
 *
 * Run: ./build/examples/scheduler_walkthrough
 */
#include <iostream>

#include "common/table.hpp"
#include "sched/dataflow.hpp"
#include "workloads/mask_synth.hpp"

using namespace dota;

namespace {

void
printMask(const SparseMask &m, const std::string &title)
{
    std::cout << title << "\n    ";
    for (size_t c = 0; c < m.cols(); ++c)
        std::cout << "k" << c + 1 << " ";
    std::cout << "\n";
    for (size_t r = 0; r < m.rows(); ++r) {
        std::cout << "q" << r + 1 << "  ";
        for (size_t c = 0; c < m.cols(); ++c)
            std::cout << (m.contains(r, static_cast<uint32_t>(c)) ? " x "
                                                                  : " . ");
        std::cout << "\n";
    }
}

void
printSchedule(const GroupSchedule &gs)
{
    for (size_t i = 0; i < gs.rounds.size(); ++i) {
        std::cout << "  round " << i + 1 << ": ";
        for (const Issue &is : gs.rounds[i].issues) {
            std::cout << "load k" << is.key + 1 << " -> {";
            bool first = true;
            for (size_t q = 0; q < 4; ++q) {
                if (is.query_mask & (1u << q)) {
                    std::cout << (first ? "" : ",") << "q" << q + 1;
                    first = false;
                }
            }
            std::cout << "}  ";
        }
        std::cout << "\n";
    }
    std::cout << "  total key loads: " << gs.keyLoads()
              << ", rounds: " << gs.rounds.size()
              << ", utilization: " << fmtPct(gs.utilization()) << "\n";
}

} // namespace

int
main()
{
    std::cout << "== Token-Parallel dataflow walkthrough ==\n\n";

    // ---- Figure 8: why token parallelism helps.
    const SparseMask m8 = figure8Mask();
    printMask(m8, "Figure 8 sparse attention graph (x = selected):");
    const auto rbr = analyzeDataflow(m8, Dataflow::RowByRow);
    const auto ino = analyzeDataflow(m8, Dataflow::TokenParallelInOrder, 4);
    std::cout << "\nrow-by-row (prior work): " << rbr.key_loads
              << " key-vector loads (paper: 10)\n";
    std::cout << "token-parallel:          " << ino.key_loads
              << " key-vector loads (paper: 5)\n\n";

    // ---- Figure 9/10: why out-of-order issue helps on top.
    const SparseMask m9 = figure9Mask();
    printMask(m9, "Figure 9 sparse attention graph:");
    const auto ino9 =
        analyzeDataflow(m9, Dataflow::TokenParallelInOrder, 4);
    std::cout << "\nin-order token-parallel: " << ino9.key_loads
              << " loads (paper: 11)\n";
    LocalityAwareScheduler las(4);
    const GroupSchedule gs = las.scheduleGroup(m9, 0);
    std::cout << "Algorithm 1 (out-of-order, the Figure 10 Scheduler):\n";
    printSchedule(gs);
    std::cout << "(paper: 7 loads in 3 rounds)\n\n";

    // ---- The same machinery on a realistic detected mask.
    std::cout << "realistic mask: Text benchmark profile, n = 512, "
                 "retention 10%\n";
    Rng rng(4);
    const SparseMask real =
        synthesizeMask(512, profileFor(BenchmarkId::Text, 0.10), rng);
    Table t;
    t.header({"dataflow", "key loads", "ideal (distinct/group)",
              "utilization"});
    for (Dataflow df : {Dataflow::RowByRow,
                        Dataflow::TokenParallelInOrder,
                        Dataflow::TokenParallelOoO}) {
        const auto stats = analyzeDataflow(real, df, 4);
        t.addRow({dataflowName(df),
                  fmtNum(static_cast<double>(stats.key_loads), 0),
                  fmtNum(static_cast<double>(stats.ideal_loads), 0),
                  fmtPct(stats.utilization)});
    }
    t.print(std::cout);
    return 0;
}
