/**
 * @file
 * Domain example: autoregressive language-model inference (the decoder
 * processing of Section 4.4).
 *
 * Two parts:
 *  1. Algorithm — train a tiny causal LM on the synthetic long-range
 *     copy grammar, enable detection at 25% retention, and actually
 *     *generate* token streams, showing the copy dependency survives
 *     omission.
 *  2. Architecture — compare single-pass scoring vs autoregressive
 *     generation on the paper-scale GPT-2 shape: generation is
 *     memory-bound, and detection cuts the K/V traffic (the paper's
 *     decoder argument).
 *
 * Run: ./build/examples/lm_generation
 */
#include <iostream>

#include "core/dota.hpp"

using namespace dota;

namespace {

/** Greedy next-token decode from logits. */
int
greedyNext(const Matrix &logits)
{
    const size_t last = logits.rows() - 1;
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(last, c) > logits(last, best))
            best = c;
    return static_cast<int>(best);
}

} // namespace

int
main()
{
    std::cout << "== Causal LM inference with DOTA ==\n\n";

    // ------------------------------------------------------------------
    // 1. Train a tiny causal LM on the copy grammar.
    // ------------------------------------------------------------------
    const Benchmark &bench = benchmark(BenchmarkId::LM);
    TransformerConfig cfg = bench.tiny;
    cfg.max_seq = 128;
    GrammarConfig gc;
    gc.seq_len = 96;
    gc.vocab = cfg.vocab;
    gc.period = 8; // dense triggers: the copy rule dominates the loss
    SyntheticGrammar grammar(gc);

    CausalLM model(cfg);
    DetectorConfig dc;
    dc.retention = 0.25;
    dc.sigma = 0.5;
    dc.lambda = 1e-3;
    DotaDetector detector(cfg, dc);

    PipelineConfig pc;
    pc.pretrain.steps = 220;
    pc.adapt.steps = 120;
    std::cout << "training causal LM on the long-range copy grammar...\n";
    const PipelineResult res = runPipelineLM(model, grammar, detector, pc);
    std::cout << "  dense perplexity:        " << fmtNum(res.dense.metric, 2)
              << "\n  DOTA @25% perplexity:    "
              << fmtNum(res.sparse.metric, 2) << "\n\n";

    // Generate: seed with a prefix containing one trigger+payload and
    // check the model copies the payload after the next trigger.
    Rng rng(77);
    auto prefix = grammar.sample(rng);
    prefix.resize(48);
    // Force a trailing trigger so the next token must be the copy.
    int payload = -1;
    for (size_t i = 0; i + 1 < prefix.size(); ++i)
        if (prefix[i] == grammar.triggerToken())
            payload = prefix[i + 1];
    prefix.push_back(grammar.triggerToken());
    const Matrix logits = model.forward(prefix);
    const int predicted = greedyNext(logits);
    const Matrix probs = rowSoftmax(
        logits.rowCopy(logits.rows() - 1));
    const double p_payload =
        probs(0, static_cast<size_t>(payload));
    std::cout << "long-range copy check: previous payload token "
              << payload << ", model (with 25% attention) predicts "
              << predicted
              << (payload == predicted ? " -> copied correctly" : "")
              << "; P(payload) = " << fmtPct(p_payload)
              << " vs ~2% uniform\n\n";

    // ------------------------------------------------------------------
    // 2. Paper-scale decoder processing (GPT-2, n = 4096).
    // ------------------------------------------------------------------
    DotaAccelerator acc(HwConfig::dotaScaledForGpu());
    SimOptions opt;
    Table t("GPT-2 (12 layers, n = 4096) on the DOTA fabric");
    t.header({"execution", "mode", "time", "attention DRAM traffic"});
    for (DotaMode mode : {DotaMode::Full, DotaMode::Conservative}) {
        opt.mode = mode;
        const RunReport scoring = acc.simulate(bench, opt);
        t.addRow({"single-pass scoring", dotaModeName(mode),
                  fmtNum(scoring.timeMs(), 2) + "ms",
                  fmtBytes(double(scoring.per_layer.attention.dram_bytes *
                                  scoring.layers))});
        const RunReport gen = acc.simulateGeneration(bench, opt);
        t.addRow({"autoregressive generation", dotaModeName(mode),
                  fmtNum(gen.timeMs(), 2) + "ms",
                  fmtBytes(double(gen.per_layer.attention.dram_bytes *
                                  gen.layers))});
    }
    t.print(std::cout);
    std::cout << "\nGeneration is memory-bound (weights re-stream per "
                 "token); detection cuts\nthe K/V fetch traffic by the "
                 "retention ratio — Section 4.4's argument.\n";
    return 0;
}
