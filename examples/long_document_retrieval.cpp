/**
 * @file
 * Domain example: long-document retrieval (the paper's hardest
 * long-sequence benchmark, LRA ACL-AAN at n = 4096).
 *
 * End-to-end walk: train a tiny cross-document matching model with the
 * DOTA detector in the loop, inspect the detected attention structure,
 * then project the workload to the paper-scale accelerator and compare
 * DOTA against the GPU and ELSA on latency, traffic and energy.
 *
 * Run: ./build/examples/long_document_retrieval
 */
#include <iostream>

#include "core/dota.hpp"

using namespace dota;

int
main()
{
    std::cout << "== Long-document retrieval on DOTA ==\n\n";
    const Benchmark &bench = benchmark(BenchmarkId::Retrieval);

    // ------------------------------------------------------------------
    // 1. Algorithm: train the matching proxy with detection at 10%.
    // ------------------------------------------------------------------
    TaskConfig tc;
    tc.kind = TaskKind::Match; // two documents, same topic or not?
    tc.seq_len = 64;
    tc.in_dim = bench.tiny.in_dim;
    tc.signal_count = 5;
    tc.locality = 0.3;
    SyntheticTask task(tc);

    TransformerClassifier model(bench.tiny);
    DetectorConfig dc;
    dc.retention = 0.10;
    dc.sigma = bench.tiny_sigma; // matching attention needs full rank
    dc.lambda = 1e-3;
    DotaDetector detector(bench.tiny, dc);

    PipelineConfig pc;
    pc.pretrain.steps = 220;
    pc.warmup_steps = 120;
    pc.adapt.steps = 150;
    std::cout << "training cross-document matcher with detection...\n";
    const PipelineResult res = runPipeline(model, task, detector, pc);
    std::cout << "  dense accuracy: " << fmtPct(res.dense.metric)
              << " | DOTA @10%: " << fmtPct(res.sparse.metric) << "\n\n";

    // ------------------------------------------------------------------
    // 2. Inspect the detected attention structure.
    // ------------------------------------------------------------------
    Rng rng(11);
    model.setHook(&detector);
    model.forward(task.sample(rng).features);
    const auto masks = harvestMasks(model);
    model.setHook(nullptr);
    const MaskStats stats = measureMask(masks[0], /*window=*/8);
    std::cout << "detected mask (layer 0, head 0): density "
              << fmtPct(stats.density) << ", local fraction "
              << fmtPct(stats.local_fraction) << ", hot-column share "
              << fmtPct(stats.top_column_share) << ", group reuse "
              << fmtNum(stats.group_reuse, 2) << "x\n\n";

    // ------------------------------------------------------------------
    // 3. Architecture: paper-scale Retrieval (n = 4096) on all devices.
    // ------------------------------------------------------------------
    System system;
    const RunReport gpu = system.run(BenchmarkId::Retrieval, "gpu-v100");
    const RunReport elsa = system.run(BenchmarkId::Retrieval, "elsa");
    const RunReport dota = system.run(BenchmarkId::Retrieval, "dota-c");

    Table t("Retrieval (n = 4096), attention block");
    t.header({"device", "attention time", "DRAM traffic/layer",
              "notes"});
    t.addRow({"V100 (dense)", fmtNum(gpu.attentionTimeMs(), 2) + "ms",
              fmtBytes(double(gpu.per_layer.attention.dram_bytes)),
              "quadratic dense attention"});
    t.addRow({"ELSA (20%)", fmtNum(elsa.attentionTimeMs(), 3) + "ms",
              fmtBytes(double(elsa.per_layer.attention.dram_bytes)),
              "query-serial, no K/V reuse"});
    t.addRow({"DOTA-C (5%)", fmtNum(dota.attentionTimeMs(), 3) + "ms",
              fmtBytes(double(dota.per_layer.attention.dram_bytes)),
              "token-parallel + out-of-order"});
    t.print(std::cout);

    const auto cmp = system.compare(BenchmarkId::Retrieval);
    std::cout << "\nDOTA-C vs GPU: attention "
              << fmtSpeedup(cmp.attention_speedup_c) << ", end-to-end "
              << fmtSpeedup(cmp.e2e_speedup_c) << " (bound "
              << fmtSpeedup(cmp.e2e_upper_bound) << "), energy "
              << fmtSpeedup(cmp.energy_eff_c) << "\n";
    return 0;
}
