/**
 * @file
 * Command-line driver for the simulator: run any benchmark on any
 * registered device with configurable fabric/dataflow options, no
 * recompilation needed.
 *
 * Usage:
 *   dota_cli [--benchmark QA|Image|Text|Retrieval|LM]
 *            [--mode full|conservative|aggressive]
 *            [--device <key>|list] [--lanes N] [--parallelism T]
 *            [--dataflow ooo|inorder|rowbyrow|streaming]
 *            [--attn auto|dense|sparse|streaming|list] [--sigma S]
 *            [--bits B] [--overlap] [--generation] [--csv]
 *
 * The software attention backend (DESIGN.md §13) is picked by --attn
 * or the DOTA_ATTN environment variable; unknown values print the
 * backend table and exit 2, mirroring --device.
 *
 * Online-serving mode (src/serve/): replay a seeded arrival trace on a
 * fleet of the selected device under an optional fault plan:
 *   dota_cli --serve [--accelerators N] [--arrival-rate R]
 *            [--requests N] [--process poisson|burst|diurnal]
 *            [--arrival-seed S] [--fault-seed S]
 *            [--fault-plan SPEC] [--timeout-ms T] [--retries R]
 *            [--deadline-ms D] [--queue-limit N]
 *
 * Autoregressive generation mode (src/serve/engine.hpp): serve a seeded
 * GenRequest trace with continuous batching over a paged KV cache and
 * DOTA-guided eviction, reporting TTFT/TPOT tails and KV occupancy:
 *   dota_cli --generate [--accelerators N] [--arrival-rate R]
 *            [--requests N] [--arrival-seed S] [--out-min N]
 *            [--out-max N] [--kv-budget-mb M] [--page-tokens N]
 *            [--max-batch N] [--step-tokens N] [--no-evict] [--no-topk]
 *            [--streaming-prefill] [--fault-plan SPEC] [--fault-seed S]
 *            [--watchdog-ms W] [--no-migration] [--migration-page-ms M]
 *            [--probation-steps N] [--probation-seqs N]
 *
 * Crash-safe training mode (src/train/): train a benchmark's tiny proxy
 * model with atomic checksummed checkpoints; kill it at any step and
 * rerun with --resume to continue bit-identically:
 *   dota_cli --train [--benchmark B] [--steps N] [--batch N]
 *            [--train-seed S] [--checkpoint-dir D]
 *            [--checkpoint-every N] [--keep-last N] [--resume]
 *            [--kill-at-step K]
 *
 * Device keys come from DeviceRegistry (`--device list` prints them);
 * the legacy aliases "dota" (mode picked by --mode) and "gpu" are still
 * accepted.
 *
 * Examples:
 *   dota_cli --benchmark Retrieval --mode aggressive
 *   dota_cli --benchmark LM --generation --mode conservative
 *   dota_cli --device gpu-v100 --benchmark Text
 *   dota_cli --device list
 *   dota_cli --serve --arrival-rate 400 --requests 200 \
 *            --fault-plan "kill:0@100,revive:0@400,transient:0.02"
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/strutil.hpp"
#include "core/dota.hpp"
#include "sim/trace.hpp"

using namespace dota;

namespace {

struct CliOptions
{
    std::string benchmark = "Text";
    std::string device = "dota";
    std::string attn;      ///< empty: keep DOTA_ATTN / auto resolution
    std::string precision; ///< empty = fp32 (FX16 datapath)
    DotaMode mode = DotaMode::Conservative;
    size_t lanes = 24;
    bool generation = false;
    bool csv = false;
    bool trace = false;
    SimOptions sim;
    // --serve mode
    bool serve = false;
    size_t accelerators = 4;
    TraceConfig arrivals;
    std::string fault_plan;
    uint64_t fault_seed = 1;
    ServePolicy policy;
    // --generate mode
    bool generate = false;
    size_t out_min = 16;
    size_t out_max = 256;
    BatchPolicy batch;
    KvPolicy kv;
    MigrationPolicy migrate;
    // --train mode
    bool train = false;
    size_t train_steps = 40;
    size_t train_batch = 4;
    uint64_t train_seed = 123;
    CheckpointConfig checkpoint;
    long kill_at_step = -1; ///< std::_Exit mid-step K when >= 0
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: dota_cli [--benchmark QA|Image|Text|Retrieval|LM]\n"
        "                [--mode full|conservative|aggressive]\n"
        "                [--device <key>|list] [--lanes N]\n"
        "                [--parallelism T] [--dataflow ooo|inorder|"
        "rowbyrow|streaming]\n"
        "                [--attn auto|dense|sparse|streaming|list]\n"
        "                [--precision fp32|int8|list]\n"
        "                [--sigma S] [--bits 2|4|8] [--overlap]\n"
        "                [--generation] [--trace] [--csv]\n"
        "       dota_cli --serve [--accelerators N] [--arrival-rate R]\n"
        "                [--requests N] [--process poisson|burst|"
        "diurnal]\n"
        "                [--arrival-seed S] [--fault-seed S]\n"
        "                [--fault-plan SPEC] [--timeout-ms T]\n"
        "                [--retries R] [--deadline-ms D] "
        "[--queue-limit N]\n"
        "       dota_cli --generate [--accelerators N] "
        "[--arrival-rate R]\n"
        "                [--requests N] [--arrival-seed S] "
        "[--out-min N]\n"
        "                [--out-max N] [--kv-budget-mb M] "
        "[--page-tokens N]\n"
        "                [--max-batch N] [--step-tokens N] "
        "[--no-evict] [--no-topk]\n"
        "                [--streaming-prefill] [--fault-plan SPEC]\n"
        "                [--fault-seed S] [--watchdog-ms W]\n"
        "                [--no-migration] [--migration-page-ms M]\n"
        "                [--probation-steps N] [--probation-seqs N]\n"
        "       dota_cli --train [--benchmark B] [--steps N] "
        "[--batch N]\n"
        "                [--train-seed S] [--checkpoint-dir D]\n"
        "                [--checkpoint-every N] [--keep-last N]\n"
        "                [--resume] [--kill-at-step K]\n"
        "device keys: " << join(DeviceRegistry::keys(), ", ")
              << " (plus aliases dota, gpu)\n";
    std::exit(2);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opt;
    // Value flags accept both "--flag value" and "--flag=value".
    std::string inline_val;
    bool has_inline = false;
    int i = 0;
    auto need = [&](int &i) -> std::string {
        if (has_inline)
            return inline_val;
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_val = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        if (arg == "--benchmark") {
            opt.benchmark = need(i);
        } else if (arg == "--device") {
            opt.device = toLower(need(i));
        } else if (arg == "--attn") {
            opt.attn = toLower(need(i));
        } else if (arg == "--precision") {
            opt.precision = toLower(need(i));
        } else if (arg == "--mode") {
            const std::string m = toLower(need(i));
            if (m == "full")
                opt.mode = DotaMode::Full;
            else if (m == "conservative")
                opt.mode = DotaMode::Conservative;
            else if (m == "aggressive")
                opt.mode = DotaMode::Aggressive;
            else
                usage();
        } else if (arg == "--lanes") {
            opt.lanes = std::stoul(need(i));
        } else if (arg == "--parallelism") {
            opt.sim.token_parallelism = std::stoul(need(i));
        } else if (arg == "--dataflow") {
            const std::string d = toLower(need(i));
            if (d == "ooo")
                opt.sim.dataflow = Dataflow::TokenParallelOoO;
            else if (d == "inorder")
                opt.sim.dataflow = Dataflow::TokenParallelInOrder;
            else if (d == "rowbyrow")
                opt.sim.dataflow = Dataflow::RowByRow;
            else if (d == "streaming")
                opt.sim.dataflow = Dataflow::StreamingTiled;
            else
                usage();
        } else if (arg == "--sigma") {
            opt.sim.detector_sigma = std::stod(need(i));
        } else if (arg == "--bits") {
            opt.sim.detector_bits = std::stoi(need(i));
        } else if (arg == "--overlap") {
            opt.sim.overlap_detection = true;
        } else if (arg == "--serve") {
            opt.serve = true;
        } else if (arg == "--accelerators") {
            opt.accelerators = std::stoul(need(i));
        } else if (arg == "--arrival-rate") {
            opt.arrivals.rate_per_s = std::stod(need(i));
        } else if (arg == "--requests") {
            opt.arrivals.requests = std::stoul(need(i));
        } else if (arg == "--process") {
            const std::string p = toLower(need(i));
            if (p == "poisson")
                opt.arrivals.process = ArrivalProcess::Poisson;
            else if (p == "burst")
                opt.arrivals.process = ArrivalProcess::Burst;
            else if (p == "diurnal")
                opt.arrivals.process = ArrivalProcess::Diurnal;
            else
                usage();
        } else if (arg == "--arrival-seed") {
            opt.arrivals.seed = std::stoull(need(i));
        } else if (arg == "--fault-seed") {
            opt.fault_seed = std::stoull(need(i));
        } else if (arg == "--fault-plan") {
            opt.fault_plan = need(i);
        } else if (arg == "--timeout-ms") {
            opt.policy.timeout_ms = std::stod(need(i));
        } else if (arg == "--retries") {
            opt.policy.max_retries = std::stoul(need(i));
        } else if (arg == "--deadline-ms") {
            opt.arrivals.deadline_ms = std::stod(need(i));
        } else if (arg == "--queue-limit") {
            opt.policy.queue_limit = std::stoul(need(i));
        } else if (arg == "--generate") {
            opt.generate = true;
        } else if (arg == "--out-min") {
            opt.out_min = std::stoul(need(i));
        } else if (arg == "--out-max") {
            opt.out_max = std::stoul(need(i));
        } else if (arg == "--kv-budget-mb") {
            opt.kv.budget_bytes = std::stoul(need(i)) << 20;
        } else if (arg == "--page-tokens") {
            opt.kv.page_tokens = std::stoul(need(i));
        } else if (arg == "--max-batch") {
            opt.batch.max_batch_seqs = std::stoul(need(i));
        } else if (arg == "--step-tokens") {
            opt.batch.max_step_tokens = std::stoul(need(i));
        } else if (arg == "--no-evict") {
            opt.kv.evict_after_prefill = false;
        } else if (arg == "--no-topk") {
            opt.kv.dynamic_topk = false;
        } else if (arg == "--streaming-prefill") {
            opt.batch.streaming_prefill = true;
        } else if (arg == "--watchdog-ms") {
            opt.batch.watchdog_stall_ms = std::stod(need(i));
        } else if (arg == "--no-migration") {
            opt.migrate.enabled = false;
        } else if (arg == "--migration-page-ms") {
            opt.migrate.page_ms = std::stod(need(i));
        } else if (arg == "--probation-steps") {
            opt.migrate.probation_steps = std::stoul(need(i));
        } else if (arg == "--probation-seqs") {
            opt.migrate.probation_seqs = std::stoul(need(i));
        } else if (arg == "--train") {
            opt.train = true;
        } else if (arg == "--steps") {
            opt.train_steps = std::stoul(need(i));
        } else if (arg == "--batch") {
            opt.train_batch = std::stoul(need(i));
        } else if (arg == "--train-seed") {
            opt.train_seed = std::stoull(need(i));
        } else if (arg == "--checkpoint-dir") {
            opt.checkpoint.dir = need(i);
        } else if (arg == "--checkpoint-every") {
            opt.checkpoint.every = std::stoul(need(i));
        } else if (arg == "--keep-last") {
            opt.checkpoint.keep_last = std::stoul(need(i));
        } else if (arg == "--resume") {
            opt.checkpoint.resume = true;
        } else if (arg == "--kill-at-step") {
            opt.kill_at_step = std::stol(need(i));
        } else if (arg == "--generation") {
            opt.generation = true;
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::cerr << "unknown flag '" << arg << "'\n";
            usage();
        }
    }
    return opt;
}

void
listDevices(std::ostream &os)
{
    Table t("registered devices");
    t.header({"key", "description"});
    for (const std::string &key : DeviceRegistry::keys())
        t.addRow({key, DeviceRegistry::describe(key)});
    t.print(os);
}

/** Print the precision table (one row per --precision value). */
void
listPrecisions(std::ostream &os)
{
    os << "inference precisions (--precision):\n"
       << "  fp32  float software path; FX16 accelerator datapath "
          "(the paper baseline)\n"
       << "  int8  quantized path (DESIGN.md §16): u8 x s8 maddubs GEMM "
          "kernels + integer softmax\n"
       << "        in software, INT8 RMMU datapath and 1-byte operand/KV "
          "traffic in the simulator\n";
}

/**
 * Resolve --precision into SimOptions::datapath, mirroring deviceKey():
 * unknown values print the precision table and exit 2; "list" prints it
 * and exits 0.
 */
void
applyPrecision(CliOptions &opt)
{
    if (opt.precision.empty() || opt.precision == "fp32")
        return;
    if (opt.precision == "list") {
        listPrecisions(std::cout);
        std::exit(0);
    }
    if (opt.precision == "int8") {
        opt.sim.datapath = Precision::INT8;
        return;
    }
    std::cerr << "unknown --precision value '" << opt.precision
              << "'; pick one of these:\n";
    listPrecisions(std::cerr);
    std::exit(2);
}

/** Map legacy aliases onto registry keys. */
std::string
deviceKey(const CliOptions &opt)
{
    if (opt.device == "dota")
        return dotaModeKey(opt.mode);
    if (opt.device == "gpu")
        return "gpu-v100";
    if (!DeviceRegistry::contains(opt.device)) {
        // Don't surface the registry's fatal(): explain the key and
        // show the same list --device=list would, then exit non-zero.
        std::cerr << "unknown device '" << opt.device
                  << "'; pick one of these keys (or the aliases dota, "
                     "gpu):\n";
        listDevices(std::cerr);
        std::exit(2);
    }
    return opt.device;
}

/** Parse --fault-plan; malformed input prints the grammar, exits 2. */
FaultPlan
faultPlanOrDie(const CliOptions &opt)
{
    FaultPlan plan;
    if (!opt.fault_plan.empty()) {
        const FaultPlanParse parsed = tryParseFaultPlan(opt.fault_plan);
        if (!parsed.ok) {
            std::cerr << "error: " << parsed.error << "\n\n"
                      << faultPlanGrammar() << "\n";
            std::exit(2);
        }
        plan = parsed.plan;
    }
    return plan;
}

/** --serve: replay a seeded arrival trace under the fault plan. */
int
runServe(const CliOptions &opt)
{
    const Benchmark &bench = benchmarkByName(opt.benchmark);
    ServeConfig sc;
    DeviceSpec spec;
    spec.key = deviceKey(opt);
    spec.count = opt.accelerators;
    spec.opts.sim = opt.sim; // --precision/--parallelism/... flow through
    sc.devices = {spec};
    sc.policy = opt.policy;
    const RequestTrace trace = generateTrace(opt.arrivals);
    const FaultPlan plan = faultPlanOrDie(opt);
    ServingSimulator sim(sc, bench);
    std::cout << "serving " << trace.requests.size() << " "
              << bench.name << " requests ("
              << arrivalProcessName(opt.arrivals.process) << " "
              << fmtNum(opt.arrivals.rate_per_s, 1)
              << " req/s, arrival seed " << opt.arrivals.seed
              << ") on " << sim.size() << "x " << spec.key
              << "\nfault plan: " << describeFaultPlan(plan)
              << " (fault seed " << opt.fault_seed << ")\n\n";
    const ServeReport rep = sim.run(trace, plan, opt.fault_seed);
    rep.print(std::cout);
    return 0;
}

/** --generate: serve a seeded GenRequest trace with the engine. */
int
runGenerate(const CliOptions &opt)
{
    const Benchmark &bench = benchmarkByName(opt.benchmark);
    EngineConfig ec;
    DeviceSpec spec;
    spec.key = deviceKey(opt);
    spec.count = opt.accelerators;
    spec.opts.sim = opt.sim; // --precision/--parallelism/... flow through
    ec.devices = {spec};
    ec.policy = opt.policy;
    ec.batch = opt.batch;
    ec.kv = opt.kv;
    // An int8 KV cache stores 1-byte codes instead of fp32: 4x the
    // tokens per page budget (per-tensor scales are amortized away).
    if (opt.sim.datapath == Precision::INT8 && ec.kv.bytes_per_token == 0)
        ec.kv.bytes_per_token =
            2 * bench.paper_shape.layers * bench.paper_shape.dim;
    ec.migrate = opt.migrate;
    GenTraceConfig tc;
    tc.arrivals = opt.arrivals;
    tc.out_min = opt.out_min;
    tc.out_max = opt.out_max;
    if (tc.out_min > tc.out_max) {
        std::cerr << "error: --out-min must be <= --out-max\n";
        std::exit(2);
    }
    const GenTrace trace = generateGenTrace(tc);
    const FaultPlan plan = faultPlanOrDie(opt);
    GenerationEngine engine(ec, bench);
    std::cout << "generating for " << trace.requests.size() << " "
              << bench.name << " prompts ("
              << arrivalProcessName(opt.arrivals.process) << " "
              << fmtNum(opt.arrivals.rate_per_s, 1)
              << " req/s, arrival seed " << opt.arrivals.seed << ", "
              << trace.totalOutputTokens() << " output tokens) on "
              << engine.size() << "x " << spec.key << " ("
              << fmtBytes(double(ec.kv.budget_bytes))
              << " KV budget/device, " << engine.bytesPerToken()
              << " B/token)\nfault plan: " << describeFaultPlan(plan)
              << " (fault seed " << opt.fault_seed << ")\n\n";
    const ServeReport rep = engine.run(trace, plan, opt.fault_seed);
    rep.print(std::cout);
    // Plain grep-friendly summary line (CI smoke asserts on it).
    std::cout << "TTFT p50=" << fmtNum(rep.gen.ttft_p50_ms, 2)
              << "ms p95=" << fmtNum(rep.gen.ttft_p95_ms, 2)
              << "ms p99=" << fmtNum(rep.gen.ttft_p99_ms, 2)
              << "ms | TPOT p50=" << fmtNum(rep.gen.tpot_p50_ms, 3)
              << "ms | KV peak " << rep.gen.kv_peak_pages << "/"
              << rep.gen.kv_pages_total << " pages\n";
    // Chaos summary (grep-friendly; only when chaos actually struck).
    if (rep.failovers + rep.gen.corrupted_pages_detected +
            rep.gen.transient_steps + rep.gen.watchdog_migrations +
            rep.gen.migrations + rep.gen.drains >
        0) {
        std::cout << "chaos: failovers=" << rep.gen.prefill_failovers
                  << "/" << rep.gen.decode_failovers
                  << " wasted-decode=" << rep.gen.wasted_decode_tokens
                  << " corrupted-pages="
                  << rep.gen.corrupted_pages_detected
                  << " recoveries=" << rep.gen.recoveries << " (p50="
                  << fmtNum(rep.gen.recovery_p50_ms, 2) << "ms)\n";
        std::cout << "migration: migrated=" << rep.gen.migrations
                  << " drains=" << rep.gen.drains
                  << " pages=" << rep.gen.migrated_pages
                  << " saved-prefill=" << rep.gen.saved_prefill_tokens
                  << " wasted-prefill=" << rep.gen.wasted_prefill_tokens
                  << " no-target=" << rep.gen.migration_no_target
                  << " poisoned=" << rep.gen.migration_poisoned
                  << " (p50=" << fmtNum(rep.gen.migration_p50_ms, 2)
                  << "ms)\n";
    }
    return 0;
}

/**
 * --train: crash-safe training of the benchmark's tiny proxy model.
 * The final loss is printed as a hex float (%a) so two runs can be
 * diffed bit-for-bit — the CI smoke kills a run mid-step, resumes it
 * and compares against an uninterrupted run.
 */
int
runTrain(const CliOptions &opt)
{
    const Benchmark &bench = benchmarkByName(opt.benchmark);
    TrainConfig tc;
    tc.steps = opt.train_steps;
    tc.batch = opt.train_batch;
    tc.data_seed = opt.train_seed;
    tc.checkpoint = opt.checkpoint;
    if (!tc.checkpoint.dir.empty() && tc.checkpoint.every == 0)
        tc.checkpoint.every = 10;

    // The hard kill fires mid-step K (after the gradient reduction,
    // before the optimizer update) — the worst place to die, since the
    // step's checkpoint has not been written yet.
    auto kill = [&](size_t step, const std::vector<Parameter *> &) {
        if (opt.kill_at_step >= 0 &&
            step == static_cast<size_t>(opt.kill_at_step)) {
            std::cerr << "simulated crash: killing the process mid-step "
                      << step << "\n";
            std::_Exit(42);
        }
    };

    double final_loss = 0.0;
    size_t trained_steps = 0;
    if (bench.id == BenchmarkId::LM) {
        TransformerConfig cfg = bench.tiny;
        cfg.max_seq = 128;
        CausalLM model(cfg);
        const SyntheticGrammar grammar(proxyGrammarFor(bench));
        LMTrainer trainer(model, grammar, tc);
        if (opt.kill_at_step >= 0)
            trainer.setGradCallback(kill);
        final_loss = trainer.train();
        trained_steps = trainer.lossHistory().size();
    } else {
        TransformerClassifier model(bench.tiny);
        const SyntheticTask task(proxyTaskFor(bench));
        ClassifierTrainer trainer(model, task, tc);
        if (opt.kill_at_step >= 0)
            trainer.setGradCallback(kill);
        final_loss = trainer.train();
        trained_steps = trainer.lossHistory().size();
    }
    char hex[64];
    std::snprintf(hex, sizeof(hex), "%a", final_loss);
    std::cout << "trained " << bench.name << " for " << trained_steps
              << "/" << tc.steps << " steps (batch " << tc.batch
              << ", seed " << tc.data_seed << ")\n"
              << "final loss " << hex << " (" << final_loss << ")\n";
    return 0;
}

void
printReport(const RunReport &r, bool csv)
{
    Table t(format("{} on {}", r.benchmark, r.device));
    t.header({"phase", "cycles/layer", "MACs/layer", "SRAM/layer",
              "DRAM/layer", "energy/layer"});
    for (const PhaseCost *p :
         {&r.per_layer.linear, &r.per_layer.detection,
          &r.per_layer.attention}) {
        t.addRow({p->name, fmtNum(double(p->cycles), 0),
                  fmtNum(double(p->macs), 0),
                  fmtBytes(double(p->sram_bytes)),
                  fmtBytes(double(p->dram_bytes)),
                  fmtNum(p->energy_pj * 1e-9, 4) + "mJ"});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "layers: " << r.layers << ", total time "
              << fmtNum(r.timeMs(), 3) << "ms, total energy "
              << fmtNum(r.totalEnergyJ() * 1e3, 3) << "mJ";
    if (!r.datapath.empty())
        std::cout << ", datapath " << r.datapath;
    std::cout << "\n";
}

/**
 * Resolve the --attn flag / DOTA_ATTN env into the process-wide backend
 * choice, mirroring deviceKey(): unknown values print the backend table
 * and exit 2 (the library alone would warn and fall back to auto — an
 * explicit CLI run should fail loudly instead of silently measuring the
 * wrong backend). "--attn list" prints the table and exits 0.
 */
void
applyAttnChoice(const CliOptions &opt)
{
    const char *env = std::getenv("DOTA_ATTN");
    AttnChoice choice = AttnChoice::Auto;
    if (env != nullptr && !parseAttnChoice(toLower(env), choice)) {
        std::cerr << "unknown DOTA_ATTN value '" << env
                  << "'; pick one of these backends:\n";
        listAttnBackends(std::cerr);
        std::exit(2);
    }
    if (opt.attn.empty())
        return;
    if (opt.attn == "list") {
        listAttnBackends(std::cout);
        std::exit(0);
    }
    if (!parseAttnChoice(opt.attn, choice)) {
        std::cerr << "unknown --attn value '" << opt.attn
                  << "'; pick one of these backends:\n";
        listAttnBackends(std::cerr);
        std::exit(2);
    }
    setAttnChoice(choice);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parse(argc, argv);
    applyAttnChoice(opt);
    applyPrecision(opt);
    if (opt.device == "list") {
        listDevices(std::cout);
        return 0;
    }
    if (opt.serve)
        return runServe(opt);
    if (opt.generate)
        return runGenerate(opt);
    if (opt.train)
        return runTrain(opt);
    const Benchmark &bench = benchmarkByName(opt.benchmark);
    const std::string key = deviceKey(opt);

    HwConfig hw = HwConfig::dota();
    hw.lanes = opt.lanes;
    hw.dram_gb_per_s = 16.0 * static_cast<double>(opt.lanes);

    DeviceOptions dev_opt;
    dev_opt.hw = hw;
    dev_opt.sim = opt.sim;
    const std::unique_ptr<Device> device =
        DeviceRegistry::create(key, dev_opt);

    const RunReport r = opt.generation
                            ? device->simulateGeneration(bench)
                            : device->simulate(bench);
    printReport(r, opt.csv);

    if (opt.trace && key.rfind("dota-", 0) == 0) {
        const DotaMode mode =
            dynamic_cast<const DotaDevice &>(*device).mode();
        std::cout << "\nexecution trace of the first attention group:\n";
        Rng rng(opt.sim.mask_seed);
        const double retention = modeRetention(bench, mode);
        const SparseMask mask = synthesizeMask(
            bench.paper_shape.seq_len,
            profileFor(bench.id, retention < 1.0 ? retention : 0.1), rng,
            bench.paper_shape.decoder);
        LocalityAwareScheduler las(opt.sim.token_parallelism);
        const GroupTrace trace = traceAttentionGroup(
            las.scheduleGroup(mask, 0), hw.lane,
            bench.paper_shape.headDim());
        trace.print(std::cout);
    }
    return 0;
}
