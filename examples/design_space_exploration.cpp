/**
 * @file
 * Domain example: architectural design-space exploration with the
 * simulator — sweep fabric scale, token parallelism and detector
 * precision for one workload and report the efficiency frontier.
 *
 * Run: ./build/examples/design_space_exploration
 */
#include <iostream>

#include "core/dota.hpp"

using namespace dota;

int
main()
{
    std::cout << "== DOTA design-space exploration (Text, DOTA-C) ==\n\n";
    const Benchmark &bench = benchmark(BenchmarkId::Text);

    // ---- Fabric scale: lanes vs latency and energy.
    {
        Table t("fabric scale (detection INT4, T = 4)");
        t.header({"lanes", "peak TOPS", "layer latency", "energy/layer",
                  "energy x delay"});
        for (size_t lanes : {4u, 8u, 16u, 24u, 32u}) {
            HwConfig hw = HwConfig::dota();
            hw.lanes = lanes;
            hw.dram_gb_per_s = 16.0 * static_cast<double>(lanes);
            DotaAccelerator acc(hw);
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            const RunReport r = acc.simulate(bench, opt);
            const double ms = r.timeMs() / r.layers;
            const double mj = r.totalEnergyJ() * 1e3 / r.layers;
            t.addRow({fmtNum(double(lanes), 0),
                      fmtNum(hw.peakTops(), 2),
                      fmtNum(ms, 4) + "ms", fmtNum(mj, 4) + "mJ",
                      fmtNum(ms * mj, 6)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // ---- Token parallelism under the full simulator (not just traffic).
    {
        Table t("token parallelism (GPU-scale fabric)");
        t.header({"T", "attention time", "scheduler buffers",
                  "attention energy/layer"});
        DotaAccelerator acc(HwConfig::dotaScaledForGpu());
        for (size_t t_par : {1u, 2u, 4u, 6u}) {
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            opt.token_parallelism = t_par;
            const RunReport r = acc.simulate(bench, opt);
            t.addRow({fmtNum(double(t_par), 0),
                      fmtNum(r.attentionTimeMs(), 4) + "ms",
                      fmtNum(double((1u << t_par) - 1), 0),
                      fmtNum((r.per_layer.attention.energy_pj +
                              r.per_layer.detection.energy_pj) * 1e-9,
                             4) + "mJ"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // ---- Detector precision: throughput/energy of the detection phase.
    {
        Table t("detection precision (GPU-scale fabric, sigma 0.25)");
        t.header({"precision", "detection cycles/layer",
                  "detection energy/layer"});
        DotaAccelerator acc(HwConfig::dotaScaledForGpu());
        for (int bits : {2, 4, 8}) {
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            opt.detector_bits = bits;
            const RunReport r = acc.simulate(bench, opt);
            t.addRow({"INT" + fmtNum(bits, 0),
                      fmtNum(double(r.per_layer.detection.cycles), 0),
                      fmtNum(r.per_layer.detection.energy_pj * 1e-9, 5) +
                          "mJ"});
        }
        t.print(std::cout);
    }

    // ---- Detection/attention overlap (row-wise RMMU reconfiguration).
    {
        Table t("detection/attention overlap ablation");
        t.header({"benchmark", "sequential layer cycles",
                  "overlapped layer cycles", "saved"});
        DotaAccelerator acc(HwConfig::dotaScaledForGpu());
        for (const Benchmark &b : allBenchmarks()) {
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            const RunReport seq = acc.simulate(b, opt);
            opt.overlap_detection = true;
            const RunReport ovl = acc.simulate(b, opt);
            const double saved =
                1.0 - static_cast<double>(ovl.per_layer.totalCycles()) /
                          static_cast<double>(seq.per_layer.totalCycles());
            t.addRow({b.name,
                      fmtNum(double(seq.per_layer.totalCycles()), 0),
                      fmtNum(double(ovl.per_layer.totalCycles()), 0),
                      fmtPct(saved)});
        }
        t.print(std::cout);
    }

    std::cout << "\nConclusion mirrors the paper: 24 lanes (~12 TOPS) with "
                 "T = 4 and INT4\ndetection sits on the knee of every "
                 "curve, and the reconfigurable array can\nhide the "
                 "detection latency entirely.\n";
    return 0;
}
