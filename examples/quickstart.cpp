/**
 * @file
 * Quickstart: the 60-second tour of the DOTA library.
 *
 * 1. Simulate a paper benchmark on the DOTA accelerator, the V100
 *    baseline and the reconstructed ELSA accelerator, and print the
 *    headline comparison (Figures 12/13).
 * 2. Train a tiny transformer with the DOTA detector in the loop on a
 *    synthetic long-sequence task and show that accuracy survives 10%
 *    retention (Table 1 / Figure 11 in miniature).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "core/dota.hpp"

using namespace dota;

int
main()
{
    std::cout << "== DOTA quickstart ==\n\n";

    // ------------------------------------------------------------------
    // Part 1: architecture — simulate the Text benchmark (LRA IMDb,
    // n = 2048) on the three devices.
    // ------------------------------------------------------------------
    System system; // GPU-scale fabric (12 TOPS), Table 2 energy model

    const auto cmp = system.compare(BenchmarkId::Text);
    std::cout << "Text benchmark (n = 2048):\n"
              << "  attention speedup over V100:  ELSA "
              << fmtSpeedup(cmp.attention_speedup_elsa) << ", DOTA-C "
              << fmtSpeedup(cmp.attention_speedup_c) << ", DOTA-A "
              << fmtSpeedup(cmp.attention_speedup_a) << "\n"
              << "  end-to-end speedup over V100: DOTA-C "
              << fmtSpeedup(cmp.e2e_speedup_c) << " (upper bound "
              << fmtSpeedup(cmp.e2e_upper_bound) << ")\n"
              << "  attention energy-efficiency:  DOTA-C "
              << fmtSpeedup(cmp.energy_eff_c) << " vs GPU\n\n";

    const RunReport r = system.run(BenchmarkId::Text,
                                   DotaMode::Conservative);
    std::cout << "DOTA-C latency breakdown per layer: linear "
              << r.per_layer.linear.cycles << " cyc, detection "
              << r.per_layer.detection.cycles << " cyc, attention "
              << r.per_layer.attention.cycles << " cyc\n\n";

    // ------------------------------------------------------------------
    // Part 2: algorithm — train with the detector in the loop.
    // ------------------------------------------------------------------
    const Benchmark &bench = benchmark(BenchmarkId::Text);
    TaskConfig tc;
    tc.seq_len = 64;
    tc.in_dim = bench.tiny.in_dim;
    tc.classes = bench.tiny.classes;
    tc.signal_count = 6;
    tc.locality = 0.5;
    SyntheticTask task(tc);

    TransformerClassifier model(bench.tiny);
    DetectorConfig dc;
    dc.retention = 0.10; // keep only 10% of attention connections
    dc.sigma = 0.5;
    dc.bits = 4;         // INT4 detection
    dc.lambda = 1e-3;
    DotaDetector detector(bench.tiny, dc);

    PipelineConfig pc; // pre-train -> detector warmup -> joint adaptation
    pc.pretrain.steps = 100;
    pc.adapt.steps = 100;
    std::cout << "training tiny transformer + detector (a few minutes on "
                 "one core)...\n";
    const PipelineResult res = runPipeline(model, task, detector, pc);

    std::cout << "  dense accuracy:        " << fmtPct(res.dense.metric)
              << "\n"
              << "  DOTA @ 10% retention:  " << fmtPct(res.sparse.metric)
              << "\n"
              << "  detector MSE (eq. 5):  " << fmtNum(res.detector_mse, 3)
              << "\n\n";

    const auto quality =
        evaluateDetection(model, task, detector, 5, dc.retention);
    std::cout << "detection quality: top-k recall "
              << fmtPct(quality.recall) << ", attention-mass recall "
              << fmtPct(quality.mass_recall) << ", density "
              << fmtPct(quality.density) << "\n";
    std::cout << "\ndone. See bench/ for every paper table and figure.\n";
    return 0;
}
