/**
 * @file
 * Domain example: measuring *why* DOTA's joint optimization works — the
 * Section 3.3 claim that L = L_model + lambda*L_MSE "not only makes S~ a
 * better estimation of S, but also makes S easier to be estimated by a
 * low-rank matrix, i.e., by reducing the rank of S".
 *
 * The example trains the same model three ways (dense; adapted with a
 * frozen detector; jointly optimized with the score-gradient injection)
 * and reports the effective rank and low-rank spectral energy of the
 * attention score matrices, plus the detector's estimation loss.
 *
 * Run: ./build/examples/attention_analysis
 */
#include <iostream>

#include "core/dota.hpp"
#include "tensor/linalg.hpp"

using namespace dota;

namespace {

/** Mean effective rank / top-k spectral energy of S across heads. */
struct SpectralSummary
{
    double eff_rank = 0.0;
    double energy_topk = 0.0; ///< share captured by rank k_detector
};

SpectralSummary
measureScores(TransformerClassifier &model, const SyntheticTask &task,
              size_t k, size_t samples = 3)
{
    Rng rng(99);
    SpectralSummary s;
    size_t count = 0;
    for (size_t i = 0; i < samples; ++i) {
        model.forward(task.sample(rng).features);
        for (auto &blk : model.blocks()) {
            for (const Matrix &scores : blk->attention().lastScores()) {
                s.eff_rank += effectiveRank(
                    scores, std::min<size_t>(scores.rows(), 24));
                s.energy_topk += spectralEnergyTopK(scores, k);
                ++count;
            }
        }
    }
    s.eff_rank /= static_cast<double>(count);
    s.energy_topk /= static_cast<double>(count);
    return s;
}

} // namespace

int
main()
{
    std::cout << "== Why joint optimization works: the rank of S ==\n\n";

    const Benchmark &bench = benchmark(BenchmarkId::Text);
    TaskConfig tc;
    tc.seq_len = 64;
    tc.in_dim = bench.tiny.in_dim;
    tc.classes = bench.tiny.classes;
    tc.signal_count = 6;
    tc.locality = 0.5;
    tc.label_noise = 0.1;
    tc.signal_strength = 2.0;
    SyntheticTask task(tc);

    // Dense pre-training, shared by all variants.
    TransformerClassifier dense_model(bench.tiny);
    TrainConfig pre;
    pre.steps = 120;
    pre.batch = 8;
    ClassifierTrainer pret(dense_model, task, pre);
    pret.train();

    struct Variant
    {
        const char *name;
        bool adapt;  ///< run the masked adaptation phase
        double lambda;
        bool inject;
    };
    const Variant variants[] = {
        {"dense (no adaptation)", false, 0.0, false},
        {"adapted, no injection (lambda -> detector only)", true, 1e-3,
         false},
        {"jointly optimized (lambda * dL_MSE/dS injected)", true, 0.05,
         true},
    };

    Table t("Spectral structure of attention scores S (Text task)");
    t.header({"training", "accuracy @10%", "eff. rank of S",
              "energy in rank-k", "detector MSE"});
    for (const Variant &v : variants) {
        TransformerClassifier model(bench.tiny);
        copyParams(dense_model, model);
        DetectorConfig dc;
        dc.retention = 0.10;
        dc.sigma = 0.5;
        dc.lambda = v.lambda;
        dc.inject_model_grad = v.inject;
        DotaDetector det(bench.tiny, dc);
        warmupDetector(model, task, det, 60, 4, 5e-3);

        if (v.adapt) {
            det.config().apply_mask = true;
            det.config().train = true;
            model.setHook(&det);
            TrainConfig ad;
            ad.steps = 120;
            ad.batch = 8;
            ad.adam.lr = 3e-4;
            ClassifierTrainer joint(model, task, ad);
            std::vector<Parameter *> dps;
            det.collectParams(dps);
            joint.addExtraParams(dps);
            joint.train();
        }

        // Evaluate with omission enabled.
        det.config().apply_mask = true;
        det.config().train = false;
        model.setHook(&det);
        TrainConfig dummy;
        ClassifierTrainer eval(model, task, dummy);
        const double acc = eval.evaluate(150).metric;
        det.consumeMseLoss();
        Rng probe(5);
        // The inference-time L_MSE probe needs observeScores to fire, so
        // force the dense path (the sparse path never materializes S).
        model.setForceDense(true);
        model.forward(task.sample(probe).features);
        model.setForceDense(false);
        const double mse = det.consumeMseLoss();
        model.setHook(nullptr);

        const SpectralSummary spec =
            measureScores(model, task, det.rank());
        t.addRow({v.name, fmtPct(acc), fmtNum(spec.eff_rank, 2),
                  fmtPct(spec.energy_topk), fmtNum(mse, 1)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape (Section 3.3): the injected gradient "
                 "lowers the effective rank\nof S and the estimation "
                 "loss, at some accuracy cost on a saturated task —\n"
                 "the trade-off lambda controls.\n";
    return 0;
}
